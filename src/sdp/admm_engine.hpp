#pragma once
// Internal engine of the first-order ADMM backend, shared by its two
// drivers:
//
//   * the synchronous loop (admm.cpp): one fork-join projection fan-out per
//     iteration — the bit-exact reference semantics;
//   * the asynchronous clique-parallel driver (admm_async.cpp): one resident
//     worker per clique-tree subtree runs the PSD projections on its own
//     clock, exchanging separator state with the consensus thread through
//     bounded-staleness mailboxes instead of a per-iteration barrier.
//
// Everything arithmetic lives here exactly once — normal-matrix setup, the
// y-update solve, the per-block eigensplit projection, the w-update, the
// residual/gap evaluation, and the iteration control law (best-iterate
// tracking, stagnation/degenerate-drift classification, residual-balanced
// adaptive rho). The async driver at max_staleness = 0 replays the same
// sequence of calls on the same snapshots, which is what makes it
// bit-identical to the synchronous loop at any worker count.
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "sdp/elimination.hpp"
#include "sdp/options.hpp"
#include "sdp/partition.hpp"
#include "sdp/problem.hpp"
#include "sdp/solver.hpp"
#include "sdp/structure.hpp"
#include "util/thread_pool.hpp"

namespace soslock::sdp {

/// Eigensplit of U into S = U^+ and X = -rho U^- (both PSD, complementary up
/// to eigensolver roundoff). The negative side — the side that becomes the
/// primal X — is reconstructed as a GEMM on the scaled eigenvector panel,
/// U^- = (Q sqrt(-lambda))(Q sqrt(-lambda))^T, so X keeps its
/// Gram/certificate shape by construction; the slack side falls out of
/// U^+ = U + U^-. One free function shared by the synchronous projection
/// fan-out and the async per-clique worker path, so the use_jacobi
/// eigensolver switch routes through exactly one implementation.
void admm_split_psd(const linalg::Matrix& u, double rho, bool use_jacobi,
                    linalg::Matrix& splus_out, linalg::Matrix& xnew_out);

class AdmmEngine {
 public:
  AdmmEngine(const Problem& p, const AdmmOptions& opt, SolveContext& ctx,
             std::shared_ptr<const ProblemStructure> structure);

  /// Setup (normal factor, initial state), then dispatch on
  /// AdmmOptions::async — the async driver needs at least two non-empty
  /// worker subtrees to beat the synchronous loop, and falls back to it
  /// otherwise.
  Solution run();

 private:
  // --- shared setup -------------------------------------------------------
  /// Factor the iteration-invariant normal matrix M = A A* + B B' (with the
  /// overlap corner block-eliminated so the dense factor stays m x m).
  void setup_normal();
  /// Warm or cold initial (x_, s_, y_, w_) plus the invariant rhs0_.
  void init_state();

  // --- shared per-iteration building blocks -------------------------------
  /// y-update: M y = (b - A(X) - B w)/rho + A(C - S) + B f over the joint
  /// (rows, consensus multipliers) space, through the cached factors.
  linalg::Vector solve_y(const std::vector<linalg::Matrix>& x,
                         const std::vector<linalg::Matrix>& s,
                         const linalg::Vector& w, double rho) const;
  /// (S, X)-update of one block: over-relaxed eigensplit projection given
  /// the current y. Reads/writes the caller's state slots (the async workers
  /// pass their private copies), returns the block's scaled dual residual.
  double project_block(std::size_t j, const linalg::Vector& y, double rho,
                       linalg::Matrix& x_j, linalg::Matrix& s_j) const;
  /// w-update (multiplier ascent on B'y = f, over-relaxed step); returns the
  /// free-variable dual residual.
  double update_w(const linalg::Vector& y, linalg::Vector& w, double rho) const;
  /// max_i |b_i - A_i(X) - B_i w| over real and overlap rows (unscaled).
  double primal_residual_inf(const std::vector<linalg::Matrix>& x,
                             const linalg::Vector& w) const;
  /// Separator-consistency residual: max |<D, X>| over the overlap couplings
  /// alone (the async driver's consensus telemetry).
  double overlap_residual_inf(const std::vector<linalg::Matrix>& x) const;
  double primal_objective(const std::vector<linalg::Matrix>& x,
                          const linalg::Vector& w) const;
  double dual_objective(const linalg::Vector& y) const;
  void fill(Solution& out, const std::vector<linalg::Matrix>& x,
            const std::vector<linalg::Matrix>& s, const linalg::Vector& y,
            const linalg::Vector& w, double pres, double dres, double gap,
            int iter) const;

  /// Post-residual control law of iteration `iter`, identical for both
  /// drivers: the divergence watchdog, progress notification,
  /// best-iterate/merit tracking, tolerance, cancellation, stagnation +
  /// degenerate-drift classification, and the residual-balanced adaptive-rho
  /// update (mutates rho_). The caller acts:
  ///   Continue    — next iteration;
  ///   Converged   — fill the result from the current iterate (Optimal);
  ///   Interrupted — return `best` with Interrupted status;
  ///   ReturnBest  — return `best` with MaxIterations status (plateau or
  ///                 degenerate-drift lock);
  ///   Diverged    — NaN/Inf entered the residuals or the iterate
  ///                 (diverged_phase_ names where); the sync driver returns
  ///                 `best` as Diverged, the async driver falls back to the
  ///                 lockstep loop when AdmmOptions::sync_fallback allows.
  enum class ControlAction { Continue, Converged, Interrupted, ReturnBest, Diverged };
  ControlAction control_step(int iter, double pres, double dres, double gap,
                             const std::vector<linalg::Matrix>& x,
                             const std::vector<linalg::Matrix>& s,
                             const linalg::Vector& y, const linalg::Vector& w,
                             Solution& best, double& best_merit, int& stagnant);
  /// Sum-scan finiteness check over a full iterate (NaN/Inf propagate
  /// through addition, and the residual max-reductions silently drop NaNs,
  /// so this is the check that actually catches a poisoned iterate).
  static bool iterate_finite(const std::vector<linalg::Matrix>& x,
                             const std::vector<linalg::Matrix>& s,
                             const linalg::Vector& y, const linalg::Vector& w);

  /// Row access across the extended index space (real rows, then overlaps).
  const Row& row_at(std::size_t i) const {
    return i < m_ ? p_.rows()[i] : *overlap_rows_[i - m_];
  }
  double rhs_at(std::size_t i) const { return i < m_ ? p_.rhs(i) : 0.0; }
  static double sparse_dot(const SparseSym& a, const SparseSym& b);

  // --- drivers ------------------------------------------------------------
  Solution run_sync();
  /// admm_async.cpp. `partition` has >= 2 non-empty workers (checked by
  /// run()) and satisfies the partition-range/order invariants.
  Solution run_async(const SubtreePartition& partition);
  /// Partition from the lowering pass when the structure carries one for
  /// this worker count, else computed on the fly.
  SubtreePartition resolve_partition(std::size_t workers) const;

  const Problem& p_;
  const AdmmOptions& opt_;
  SolveContext& ctx_;
  std::shared_ptr<const ProblemStructure> structure_;
  util::ThreadPool pool_;  // sync projection fan-out (opt_.threads)
  PhaseTimes phase_;
  std::vector<std::vector<BlockRowView>> views_;
  std::vector<const Row*> overlap_rows_;  // native-cone couplings, rows [m, m+q)
  std::optional<linalg::Cholesky> chol_m_;  // reduced Nyy - W^T W (m x m)
  OverlapElimination elim_;                 // overlap-corner factors (q > 0 only)
  std::vector<linalg::Matrix> x_, s_;
  linalg::Vector y_, w_, rhs0_;
  std::size_t m_ = 0, q_ = 0, mext_ = 0, nf_ = 0, nblocks_ = 0, total_dim_ = 0;
  double data_norm_ = 1.0, c_norm_ = 1.0;
  double rho_ = 1.0;
  double alpha_ = 1.6;
  int rho_interval_ = 50;
  /// Phase the watchdog blamed for a ControlAction::Diverged ("gap",
  /// "primal-residual", "iterate", ...); copied to Solution::faulted_phase.
  std::string diverged_phase_;
  /// In-solve recovery steps (the async driver's sync fallback); run()
  /// appends them to the returned Solution.
  std::vector<RecoveryRecord> recoveries_;
};

}  // namespace soslock::sdp
