#include "core/advection.hpp"

#include <cmath>

#include "core/lyapunov.hpp"
#include "poly/basis.hpp"
#include "poly/sparsity.hpp"
#include "util/log.hpp"

namespace soslock::core {

using hybrid::SemialgebraicSet;
using poly::Monomial;
using poly::Polynomial;
using poly::PolyLin;

AdvectionStepResult AdvectionEngine::step(const Polynomial& b_prev) const {
  double eps = options_.eps;
  AdvectionStepResult last;
  sos::SolveStats attempts;  // telemetry across the eps/lambda ladder
  for (int attempt = 0; attempt <= options_.eps_retries; ++attempt) {
    // Inner ladder over the constant preimage multiplier of condition (B).
    double lambda = 1.0;
    for (int lam_try = 0; lam_try < 3; ++lam_try) {
      last = step_with_eps(b_prev, eps, lambda);
      attempts.merge(last.solver);
      last.solver = attempts;
      if (last.success) break;
      lambda *= std::max(1.5, options_.preimage_multiplier);
    }
    if (last.success) {
      last.eps_used = eps;
      // Canonical rescale: b(0) = -origin_normalization (set-preserving).
      const double b0 = last.next.eval(linalg::Vector(system_.nvars(), 0.0));
      if (b0 < -1e-9) {
        last.next *= options_.origin_normalization / (-b0);
      }
      return last;
    }
    eps *= 2.0;
  }
  return last;
}

AdvectionStepResult AdvectionEngine::step_with_eps(const Polynomial& b_prev, double eps,
                                                   double lambda) const {
  AdvectionStepResult result;
  const std::size_t nstates = system_.nstates();
  const std::size_t nvars = system_.nvars();
  const double h = options_.h;
  const double gamma = options_.gamma;
  const double kappa = options_.curvature_fraction * gamma;

  sos::SosProgram prog(nvars);
  prog.set_trace_regularization(options_.trace_regularization);
  prog.set_sparsity(options_.solver);

  // Unknown advected polynomial over the states (constant term included).
  const std::vector<Monomial> support =
      state_monomials(nvars, nstates, options_.set_degree, 0);
  const PolyLin b_next = prog.add_poly(support, "b");

  // Origin stays strictly inside: b_next(0) <= -origin_margin.
  prog.add_linear_ge(-b_next.coefficient(Monomial(nvars)) -
                         poly::LinExpr(options_.origin_margin),
                     "origin inside");

  // Coefficient box (keeps the tightness objective bounded).
  for (const auto& [m, coeff] : b_next.terms()) {
    prog.add_linear_ge(poly::LinExpr(options_.coeff_cap) - coeff, "coeff cap+");
    prog.add_linear_ge(coeff + poly::LinExpr(options_.coeff_cap), "coeff cap-");
  }

  poly::MultiplierSparsity csp = sos::multiplier_plan(nvars, options_.solver);
  auto add_domain_multipliers = [&](PolyLin& expr, const SemialgebraicSet& dom,
                                    const std::string& tag) {
    for (std::size_t k = 0; k < dom.constraints().size(); ++k) {
      const PolyLin s = prog.add_sos_poly(
          csp.multiplier_basis(dom.constraints()[k], options_.multiplier_degree),
          tag + ".g" + std::to_string(k));
      expr -= s * dom.constraints()[k];
    }
  };

  // Advection data per mode, built up front so the csp plan couples *every*
  // mode's target before the first multiplier basis is drawn from it
  // (clique bases must come from the full csp graph, not an
  // order-dependent prefix).
  std::vector<PolyLin> tb_all, r_all;
  tb_all.reserve(system_.modes().size());
  r_all.reserve(system_.modes().size());
  csp.couple(PolyLin(b_prev));
  for (std::size_t q = 0; q < system_.modes().size(); ++q) {
    const auto& mode = system_.modes()[q];

    // First-order Taylor expansion of the backward advection
    // (E_{-h} b)(x) = b(Phi_h(x)) ~ b + h * grad(b)·f_q.
    PolyLin tb = b_next + h * b_next.lie_derivative(mode.flow);

    // Second-order term of b(Phi_h(x)):
    // R = (h^2/2) * (f' Hess(b) f + grad(b)·(Jf f)).
    PolyLin r(nvars);
    for (std::size_t i = 0; i < nstates; ++i) {
      const PolyLin di = b_next.derivative(i);
      for (std::size_t j = 0; j < nstates; ++j) {
        const PolyLin dij = di.derivative(j);
        if (dij.is_zero()) continue;
        r += dij * (mode.flow[i] * mode.flow[j]);
      }
      const Polynomial fi_dot = mode.flow[i].lie_derivative(mode.flow);
      if (!fi_dot.is_zero()) r += di * fi_dot;
    }
    r *= 0.5 * h * h;
    csp.couple(tb);
    csp.couple(r);
    tb_all.push_back(std::move(tb));
    r_all.push_back(std::move(r));
  }

  for (std::size_t q = 0; q < system_.modes().size(); ++q) {
    const auto& mode = system_.modes()[q];
    const std::string tag = "adv.m" + std::to_string(q);
    const PolyLin& tb = tb_all[q];
    const PolyLin& r = r_all[q];

    // (A) progress: on C_q x U, b_prev <= 0 => T b + gamma <= 0.
    {
      const PolyLin sa = prog.add_sos_poly(options_.multiplier_degree, 0, tag + ".sa");
      PolyLin expr = -tb - PolyLin(Polynomial::constant(nvars, gamma)) + sa * b_prev;
      add_domain_multipliers(expr, mode.domain, tag + ".A");
      add_domain_multipliers(expr, system_.parameter_set(), tag + ".Au");
      prog.add_sos_constraint(expr, tag + ".progress");
    }

    // (B) bounded step: on C_q x U, T b - gamma <= 0 => b_prev - eps <= 0,
    // certified with a constant multiplier lambda to keep the program affine
    // in b_next.
    {
      PolyLin expr = PolyLin(Polynomial::constant(nvars, eps) - b_prev) + lambda * tb -
                     PolyLin(Polynomial::constant(nvars, lambda * gamma));
      add_domain_multipliers(expr, mode.domain, tag + ".B");
      add_domain_multipliers(expr, system_.parameter_set(), tag + ".Bu");
      prog.add_sos_constraint(expr, tag + ".bounded");
    }

    // (C) curvature bound |R| <= kappa on {b_prev <= eps} ∩ C_q x U.
    for (int sign = -1; sign <= 1; sign += 2) {
      const PolyLin sc = prog.add_sos_poly(options_.multiplier_degree, 0,
                                           tag + ".sc" + std::to_string(sign));
      PolyLin expr = PolyLin(Polynomial::constant(nvars, kappa)) -
                     static_cast<double>(sign) * r -
                     sc * (Polynomial::constant(nvars, eps) - b_prev);
      add_domain_multipliers(expr, mode.domain, tag + ".C" + std::to_string(sign));
      add_domain_multipliers(expr, system_.parameter_set(), tag + ".Cu" + std::to_string(sign));
      prog.add_sos_constraint(expr, tag + ".curvature" + std::to_string(sign));
    }
  }

  // Tightness objective: maximize int_box b_next (shrinks the sublevel set
  // onto the forward image, see header).
  {
    std::vector<std::pair<double, double>> box = options_.integration_box;
    if (box.empty()) box = hybrid::estimate_state_box(system_);
    poly::LinExpr volume_proxy;
    for (const auto& [m, coeff] : b_next.terms()) {
      double moment = 1.0;
      for (std::size_t i = 0; i < nstates; ++i) {
        const auto [lo, hi] = box[i];
        const double p = static_cast<double>(m.exponent(i)) + 1.0;
        moment *= (std::pow(hi, p) - std::pow(lo, p)) / p;
      }
      volume_proxy += moment * coeff;
    }
    prog.maximize(volume_proxy);
  }

  const bool reuse = options_.solver.warm_start;
  const sos::SolveResult solved =
      prog.solve(options_.solver, reuse && !warm_cache_.empty() ? &warm_cache_ : nullptr);
  // An infeasible attempt exports no blob; keep the previous one for the
  // next rung of the ladder instead of clearing the cache.
  if (reuse && !solved.warm.empty()) warm_cache_ = solved.warm;
  result.solver.absorb(solved);
  // Audit-based acceptance: only certified-infeasible statuses or large
  // residuals are rejected outright; a stalled-but-valid iterate passes the
  // audit below and yields a sound (merely less tight) step.
  if (sos::solve_hard_failed(solved)) {
    result.message = "advection step infeasible (" + sdp::to_string(solved.status) +
                     ") at eps=" + std::to_string(eps);
    return result;
  }
  result.audit = sos::audit(prog, solved);
  if (!result.audit.ok) {
    result.message = "advection certificate failed audit";
    return result;
  }
  result.next = solved.value(b_next).pruned(1e-12);
  // Reject degenerate (near-flat) iterates: they arise when an escalated eps
  // makes condition (B) vacuous and describe "the whole space", which would
  // silently stall the advection loop.
  double max_shape_coeff = 0.0;
  double constant_coeff = 0.0;
  for (const auto& [m, c] : result.next.terms()) {
    if (m.is_constant()) {
      constant_coeff = std::fabs(c);
    } else {
      max_shape_coeff = std::max(max_shape_coeff, std::fabs(c));
    }
  }
  if (max_shape_coeff < 0.02 * std::max(constant_coeff, 1e-6)) {
    result.message = "advection step degenerated to a near-flat set at eps=" +
                     std::to_string(eps);
    return result;
  }
  result.success = true;
  return result;
}

}  // namespace soslock::core
