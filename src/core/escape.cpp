#include "core/escape.hpp"

#include "core/lyapunov.hpp"
#include "poly/sparsity.hpp"
#include "sos/batch.hpp"
#include "util/log.hpp"

namespace soslock::core {

using hybrid::SemialgebraicSet;
using poly::LinExpr;
using poly::Monomial;
using poly::Polynomial;
using poly::PolyLin;

namespace {

/// Build and solve one escape program: E over `modes` (shared E when several
/// modes are passed), each restricted to its own semialgebraic set. `warm`
/// optionally replays a structurally identical previous iterate (the
/// per-mode programs share one shape, so mode 0 seeds the rest);
/// `warm_out` receives this solve's exported blob.
EscapeResult solve_escape(const hybrid::HybridSystem& system,
                          const std::vector<std::size_t>& modes,
                          const std::vector<SemialgebraicSet>& sets,
                          const EscapeOptions& options,
                          const sdp::WarmStart* warm = nullptr,
                          sdp::WarmStart* warm_out = nullptr) {
  EscapeResult result;
  const std::size_t nstates = system.nstates();
  const std::size_t nvars = system.nvars();

  sos::SosProgram prog(nvars);
  prog.set_trace_regularization(options.trace_regularization);
  prog.set_sparsity(options.solver);

  // E: states only, degrees 1..d (the constant shifts nothing).
  const PolyLin e_poly =
      prog.add_poly(state_monomials(nvars, nstates, options.certificate_degree, 1), "E");
  const LinExpr rho = prog.add_scalar("rho");
  prog.add_linear_ge(rho - LinExpr(options.rho_min), "rho_min");
  prog.add_linear_ge(LinExpr(options.rho_cap) - rho, "rho_cap");
  for (const auto& [m, coeff] : e_poly.terms()) {
    prog.add_linear_ge(LinExpr(options.coeff_cap) - coeff, "E cap+");
    prog.add_linear_ge(coeff + LinExpr(options.coeff_cap), "E cap-");
  }

  // Two-phase: couple every mode's target before the first multiplier is
  // created, so the clique bases come from the full csp graph regardless of
  // mode order.
  poly::MultiplierSparsity csp = sos::multiplier_plan(nvars, options.solver);
  std::vector<PolyLin> exprs;
  exprs.reserve(modes.size());
  for (const std::size_t q : modes) {
    // -dE/dx·f_q - rho - sum sigma*g ∈ Σ on the set.
    PolyLin expr = -e_poly.lie_derivative(system.modes()[q].flow);
    PolyLin rho_term(nvars);
    rho_term.add_term(Monomial(nvars), rho);
    expr -= rho_term;
    csp.couple(expr);
    exprs.push_back(std::move(expr));
  }
  for (std::size_t idx = 0; idx < modes.size(); ++idx) {
    const std::size_t q = modes[idx];
    const std::string tag = "esc.m" + std::to_string(q);
    PolyLin expr = std::move(exprs[idx]);
    for (std::size_t k = 0; k < sets[idx].constraints().size(); ++k) {
      const PolyLin s = prog.add_sos_poly(
          csp.multiplier_basis(sets[idx].constraints()[k], options.multiplier_degree),
          tag + ".g" + std::to_string(k));
      expr -= s * sets[idx].constraints()[k];
    }
    for (std::size_t k = 0; k < system.parameter_set().constraints().size(); ++k) {
      const PolyLin s = prog.add_sos_poly(
          csp.multiplier_basis(system.parameter_set().constraints()[k],
                               options.multiplier_degree),
          tag + ".u" + std::to_string(k));
      expr -= s * system.parameter_set().constraints()[k];
    }
    prog.add_sos_constraint(expr, tag + ".escape");
  }

  prog.maximize(rho);
  const sos::SolveResult solved = prog.solve(options.solver, warm);
  if (warm_out != nullptr && !solved.warm.empty()) *warm_out = solved.warm;
  result.solver.absorb(solved);
  if (sos::solve_hard_failed(solved)) {
    result.message = "escape SOS infeasible (" + sdp::to_string(solved.status) + ")";
    return result;
  }
  result.audit = sos::audit(prog, solved);
  if (!result.audit.ok) {
    result.message = "escape certificate failed audit";
    return result;
  }
  const double rate = solved.value(rho);
  if (!(rate >= options.rho_min)) {
    result.message = "escape rate below rho_min";
    return result;
  }
  result.success = true;
  const Polynomial e_num = solved.value(e_poly).pruned(1e-12);
  for (std::size_t idx = 0; idx < modes.size(); ++idx) {
    result.certificates.push_back(e_num);
    result.rates.push_back(rate);
  }
  result.num_certificates = 1;
  return result;
}

}  // namespace

EscapeResult EscapeCertifier::certify(const hybrid::HybridSystem& system,
                                      const std::vector<std::size_t>& modes,
                                      const Polynomial& region,
                                      const std::vector<Polynomial>& certificates,
                                      double level) const {
  // Region per mode: S(region) ∩ {V_q >= level} ∩ C_q.
  std::vector<SemialgebraicSet> sets;
  sets.reserve(modes.size());
  for (std::size_t q : modes) {
    SemialgebraicSet s = system.modes()[q].domain;
    s.add_constraint(-1.0 * region);                      // region <= 0
    s.add_constraint(certificates[q] - level);            // outside the level set
    sets.push_back(std::move(s));
  }

  if (!options_.per_mode) {
    return solve_escape(system, modes, sets, options_);
  }

  // Independent certificate per mode (mirrors the paper's "2 certificates");
  // the per-mode programs are independent SDPs, solved on the batch pool
  // (modes after the first failure are skipped). With warm starts on, mode 0
  // solves first and its iterate seeds the remaining modes — the per-mode
  // programs are structurally identical whenever the mode sets have the same
  // shape (a mismatch is rejected by the blob's fingerprint and solves cold).
  std::vector<EscapeResult> per_mode(modes.size());
  const sos::BatchSolver batch(options_.threads);
  const bool reuse = options_.solver.warm_start && modes.size() > 1;
  // Concurrent per-mode solves share the backend thread budget (the same
  // anti-oversubscription division BatchSolver::solve_all applies).
  EscapeOptions batched_options = options_;
  batched_options.solver =
      batch.effective_config(options_.solver, reuse ? modes.size() - 1 : modes.size());
  std::size_t failed = modes.size();
  if (reuse) {
    sdp::WarmStart seed;
    per_mode[0] = solve_escape(system, {modes[0]}, {sets[0]}, options_, nullptr, &seed);
    if (!per_mode[0].success) {
      failed = 0;
    } else {
      const std::size_t rest =
          batch.run_all_until_failure(modes.size() - 1, [&](std::size_t i) {
            const std::size_t idx = i + 1;
            per_mode[idx] = solve_escape(system, {modes[idx]}, {sets[idx]}, batched_options,
                                         seed.empty() ? nullptr : &seed);
            return per_mode[idx].success;
          });
      if (rest < modes.size() - 1) failed = rest + 1;
    }
  } else {
    failed = batch.run_all_until_failure(modes.size(), [&](std::size_t idx) {
      per_mode[idx] = solve_escape(system, {modes[idx]}, {sets[idx]}, batched_options);
      return per_mode[idx].success;
    });
  }

  EscapeResult combined;
  for (const EscapeResult& one : per_mode) {
    combined.audit.checked += one.audit.checked;
    combined.audit.failed += one.audit.failed;
    combined.solver.merge(one.solver);
  }
  if (failed < modes.size()) {
    combined.message =
        "mode " + std::to_string(modes[failed]) + ": " + per_mode[failed].message;
    return combined;
  }
  combined.success = true;
  for (const EscapeResult& one : per_mode) {
    combined.certificates.push_back(one.certificates.front());
    combined.rates.push_back(one.rates.front());
    ++combined.num_certificates;
  }
  combined.audit.ok = combined.audit.failed == 0;
  return combined;
}

EscapeResult EscapeCertifier::certify_set(const hybrid::HybridSystem& system, std::size_t mode,
                                          const SemialgebraicSet& set) const {
  return solve_escape(system, {mode}, {set}, options_);
}

}  // namespace soslock::core
