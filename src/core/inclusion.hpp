#pragma once
// Certified set-inclusion tests between polynomial sublevel sets (Lemma 1 of
// the paper): S(b1) ⊆ S(b2) is certified by sigma ∈ Σ with
//   sigma * b1 - b2 ∈ Σ.
// Used by Algorithm 1 to decide when an advected level set has immersed into
// the attractive invariant.
#include <map>
#include <vector>

#include "core/level_set.hpp"
#include "hybrid/system.hpp"
#include "sos/checker.hpp"
#include "sos/program.hpp"

namespace soslock::core {

struct InclusionOptions {
  unsigned multiplier_degree = 2;
  double trace_regularization = 1e-7;
  sdp::SolverConfig solver;
};

struct InclusionResult {
  bool included = false;          // certified
  sos::AuditReport audit;
  sos::SolveStats solver;         // backend telemetry for Table-2 rows
  std::string message;
  /// For per-mode checks: which modes failed (empty when included).
  std::vector<std::size_t> failed_modes;
};

class InclusionChecker {
 public:
  explicit InclusionChecker(InclusionOptions options = {}) : options_(options) {}

  /// Certify S(b1) ⊆ S(b2) globally.
  InclusionResult subset(const poly::Polynomial& b1, const poly::Polynomial& b2) const;

  /// Certify S(b1) ⊆ S(b2) restricted to a semialgebraic domain. `warm`
  /// optionally replays a structurally matching previous iterate; `warm_out`
  /// receives this solve's iterate for chaining (see SosProgram::solve).
  InclusionResult subset_on(const poly::Polynomial& b1, const poly::Polynomial& b2,
                            const hybrid::SemialgebraicSet& domain,
                            const sdp::WarmStart* warm = nullptr,
                            sdp::WarmStart* warm_out = nullptr) const;

  /// The hybrid immersion check of Algorithm 1: for every mode q,
  ///   x ∈ S(b) ∩ C_q  =>  V_q(x) <= level,
  /// so every hybrid state over S(b) lies in the attractive invariant at the
  /// jump-consistent level.
  InclusionResult subset_of_invariant(const poly::Polynomial& b,
                                      const hybrid::HybridSystem& system,
                                      const std::vector<poly::Polynomial>& certificates,
                                      double level) const;

 private:
  InclusionOptions options_;
  /// Per-mode warm-start blobs chained across the repeated immersion checks
  /// of the advection loop (the mode-q program shape is identical from one
  /// advection iterate to the next). Gated by options.solver.warm_start; the
  /// checker is driven sequentially by the pipeline, so no synchronization.
  mutable std::map<std::size_t, sdp::WarmStart> mode_warm_cache_;
};

}  // namespace soslock::core
