#pragma once
// Barrier certificates for safety of hybrid systems (Prajna & Jadbabaie,
// reference [11] of the paper): a polynomial B with
//   B(x) <= 0            on the initial set X0        (per mode),
//   B(x) >  0            on the unsafe set Xu         (per mode),
//   dB/dx · f_q <= 0     on C_q x U                   (flow condition),
//   B(R_l(x)) <= B(x)    on each guard D_l            (jump condition),
// proves that no trajectory from X0 ever reaches Xu. For the CP PLL this
// verifies e.g. "the control voltage never exceeds the supply rail while
// acquiring lock" — the safety companion of the inevitability property.
#include "hybrid/system.hpp"
#include "sos/checker.hpp"
#include "sos/program.hpp"

namespace soslock::core {

struct BarrierOptions {
  unsigned certificate_degree = 4;
  unsigned multiplier_degree = 2;
  double unsafe_margin = 1e-3;  // B >= margin on the unsafe set
  bool common_certificate = true;  // single B across modes (else one per mode)
  double trace_regularization = 1e-7;
  sdp::SolverConfig solver;
};

struct BarrierResult {
  bool success = false;
  std::vector<poly::Polynomial> certificates;  // per mode
  sos::AuditReport audit;
  sos::SolveStats solver;  // backend telemetry
  std::string message;
};

class BarrierCertifier {
 public:
  explicit BarrierCertifier(BarrierOptions options = {}) : options_(options) {}

  /// Synthesize a barrier separating `initial` from `unsafe` under every
  /// mode's flow (both sets over the full variable space of `system`).
  BarrierResult certify(const hybrid::HybridSystem& system,
                        const hybrid::SemialgebraicSet& initial,
                        const hybrid::SemialgebraicSet& unsafe) const;

 private:
  BarrierOptions options_;
  /// Iterate of the most recent solve, replayed into the next certify()
  /// call — margin/degree sweeps re-certify one compiled shape over and
  /// over (a mismatched blob is rejected by its fingerprint and solves
  /// cold). Gated by options.solver.warm_start; driven sequentially.
  mutable sdp::WarmStart warm_cache_;
};

}  // namespace soslock::core
