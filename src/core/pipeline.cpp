#include "core/pipeline.hpp"

#include <cstdio>

#include "util/log.hpp"

namespace soslock::core {

using poly::Polynomial;

std::string to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::VerifiedByAdvection: return "VerifiedByAdvection";
    case Verdict::VerifiedWithEscape: return "VerifiedWithEscape";
    case Verdict::AttractiveInvariantOnly: return "AttractiveInvariantOnly";
    case Verdict::Failed: return "Failed";
  }
  return "?";
}

std::string PipelineReport::summary() const {
  std::string out = "verdict: " + to_string(verdict) + "\n";
  if (!levels.levels.empty()) {
    out += "  levels:";
    char buf[48];
    for (double c : levels.levels) {
      std::snprintf(buf, sizeof(buf), " %.4g", c);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "  (consistent %.4g)\n", levels.consistent_level);
    out += buf;
  }
  out += "  advection iterations: " + std::to_string(advection_iterations) +
         (advection_included ? " (immersed)" : " (not immersed)") + "\n";
  if (escape.num_certificates > 0)
    out += "  escape certificates: " + std::to_string(escape.num_certificates) + "\n";
  if (!message.empty()) out += "  note: " + message + "\n";
  out += timings.str("  timings (paper Table 2 rows):");
  return out;
}

PipelineReport InevitabilityVerifier::verify(const hybrid::HybridSystem& system,
                                             const Polynomial& b_init) const {
  PipelineReport report;
  util::Timer timer;

  // --- P1, step 1: attractive invariant (multiple Lyapunov certificates).
  timer.reset();
  const LyapunovSynthesizer lyap(options_.lyapunov);
  report.lyapunov = lyap.synthesize(system);
  report.timings.add("Attractive Invariant", timer.seconds(),
                     "degree " + std::to_string(options_.lyapunov.certificate_degree) + ", " +
                         report.lyapunov.solver.str());
  if (!report.lyapunov.success) {
    report.verdict = Verdict::Failed;
    report.message = report.lyapunov.message;
    return report;
  }

  // --- P1, step 2: maximized level curves.
  timer.reset();
  const LevelSetMaximizer levels(options_.level);
  report.levels = levels.maximize(system, report.lyapunov.certificates);
  report.timings.add("Max.Level Curves", timer.seconds(), report.levels.solver.str());
  if (!report.levels.success) {
    report.verdict = Verdict::Failed;
    report.message = report.levels.message;
    return report;
  }
  report.invariant.certificates = report.lyapunov.certificates;
  report.invariant.levels = report.levels.levels;
  report.invariant.consistent_level = report.levels.consistent_level;

  // --- P2: bounded advection with immersion checks.
  const AdvectionEngine advect(system, options_.advection);
  const InclusionChecker inclusion(options_.inclusion);
  report.advection_iterates.push_back(b_init);

  double advect_time = 0.0, inclusion_time = 0.0;
  sos::SolveStats advect_stats, inclusion_stats;
  Polynomial current = b_init;
  // Initial set may already be immersed.
  timer.reset();
  InclusionResult incl = inclusion.subset_of_invariant(
      current, system, report.invariant.certificates, report.invariant.consistent_level);
  inclusion_time += timer.seconds();
  inclusion_stats.merge(incl.solver);
  report.advection_included = incl.included;

  while (!report.advection_included &&
         report.advection_iterations < options_.max_advection_iterations) {
    timer.reset();
    const AdvectionStepResult step = advect.step(current);
    advect_time += timer.seconds();
    advect_stats.merge(step.solver);
    if (!step.success) {
      report.message = step.message;
      break;
    }
    current = step.next;
    report.advection_iterates.push_back(current);
    ++report.advection_iterations;

    timer.reset();
    incl = inclusion.subset_of_invariant(current, system, report.invariant.certificates,
                                         report.invariant.consistent_level);
    inclusion_time += timer.seconds();
    inclusion_stats.merge(incl.solver);
    report.advection_included = incl.included;
    util::log_info("pipeline: advection iteration ", report.advection_iterations,
                   incl.included ? " -> immersed" : " -> not yet immersed");
  }
  report.timings.add("Advection", advect_time,
                     std::to_string(report.advection_iterations) + " iterations, " +
                         advect_stats.str());
  report.timings.add("Checking Set Inclusion", inclusion_time, inclusion_stats.str());
  report.residual_modes = incl.failed_modes;

  if (report.advection_included) {
    report.verdict = Verdict::VerifiedByAdvection;
    return report;
  }

  // --- Algorithm 1 lines 13-18: escape certificates on the residual region.
  if (options_.escape_fallback && !report.residual_modes.empty()) {
    timer.reset();
    const EscapeCertifier escaper(options_.escape);
    report.escape =
        escaper.certify(system, report.residual_modes, current,
                        report.invariant.certificates, report.invariant.consistent_level);
    report.timings.add("Escape Certificate", timer.seconds(),
                       std::to_string(report.escape.num_certificates) + " certificates, " +
                           report.escape.solver.str());
    if (report.escape.success) {
      report.verdict = Verdict::VerifiedWithEscape;
      return report;
    }
    report.message = report.escape.message;
  }

  report.verdict = Verdict::AttractiveInvariantOnly;
  return report;
}

}  // namespace soslock::core
