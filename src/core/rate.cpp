#include "core/rate.hpp"

#include <cmath>

#include "poly/sparsity.hpp"
#include "util/log.hpp"

namespace soslock::core {

using hybrid::SemialgebraicSet;
using poly::LinExpr;
using poly::Monomial;
using poly::Polynomial;
using poly::PolyLin;

namespace {

void add_set_multipliers(sos::SosProgram& prog, PolyLin& expr, const SemialgebraicSet& set,
                         unsigned degree, const std::string& tag,
                         const poly::MultiplierSparsity& csp) {
  for (std::size_t k = 0; k < set.constraints().size(); ++k) {
    const PolyLin sigma = prog.add_sos_poly(
        csp.multiplier_basis(set.constraints()[k], degree), tag + std::to_string(k));
    expr -= sigma * set.constraints()[k];
  }
}

/// Maximize t subject to (sign ? v - t*n2 : t_cap... ) via bisection-free
/// direct SDP: expr(t) must stay affine in t.
struct ScalarBound {
  bool success = false;
  double value = 0.0;
  sos::SolveStats solver;
};

/// maximize t s.t. v - t*|x|^2 - sigmas*g ∈ Σ      (lower quadratic bound)
ScalarBound quadratic_lower(const hybrid::HybridSystem& system, std::size_t q,
                            const Polynomial& v, const RateOptions& options,
                            const sdp::WarmStart* warm, sdp::WarmStart* warm_out) {
  sos::SosProgram prog(system.nvars());
  prog.set_trace_regularization(options.trace_regularization);
  prog.set_sparsity(options.solver);
  const LinExpr t = prog.add_scalar("m");
  prog.add_linear_ge(t, "m >= 0");
  prog.add_linear_ge(LinExpr(options.alpha_cap) - t, "m cap");
  PolyLin expr(v);
  PolyLin tn(system.nvars());
  const Polynomial n2 = poly::squared_norm(system.nvars(), system.nstates());
  for (const auto& [m, c] : n2.terms()) tn.add_term(m, c * t);
  expr -= tn;
  poly::MultiplierSparsity csp = sos::multiplier_plan(system.nvars(), options.solver);
  csp.couple(expr);
  add_set_multipliers(prog, expr, system.modes()[q].domain, options.multiplier_degree, "ql",
                      csp);
  prog.add_sos_constraint(expr, "quadratic lower");
  prog.maximize(t);
  const sos::SolveResult r = prog.solve(options.solver, warm);
  if (warm_out != nullptr && !r.warm.empty()) *warm_out = r.warm;
  ScalarBound out;
  out.solver.absorb(r);
  if (!r.feasible || !sos::audit(prog, r).ok) return out;
  out.success = true;
  out.value = r.value(t);
  return out;
}

/// minimize T s.t. T*|x|^2 - v - sigmas*g ∈ Σ      (upper quadratic bound)
ScalarBound quadratic_upper(const hybrid::HybridSystem& system, std::size_t q,
                            const Polynomial& v, const RateOptions& options,
                            const sdp::WarmStart* warm, sdp::WarmStart* warm_out) {
  sos::SosProgram prog(system.nvars());
  prog.set_trace_regularization(options.trace_regularization);
  prog.set_sparsity(options.solver);
  const LinExpr t = prog.add_scalar("M");
  prog.add_linear_ge(t, "M >= 0");
  prog.add_linear_ge(LinExpr(1e6) - t, "M cap");
  PolyLin expr(-1.0 * v);
  PolyLin tn(system.nvars());
  const Polynomial n2 = poly::squared_norm(system.nvars(), system.nstates());
  for (const auto& [m, c] : n2.terms()) tn.add_term(m, c * t);
  expr += tn;
  poly::MultiplierSparsity csp = sos::multiplier_plan(system.nvars(), options.solver);
  csp.couple(expr);
  add_set_multipliers(prog, expr, system.modes()[q].domain, options.multiplier_degree, "qu",
                      csp);
  prog.add_sos_constraint(expr, "quadratic upper");
  prog.minimize(t);
  const sos::SolveResult r = prog.solve(options.solver, warm);
  if (warm_out != nullptr && !r.warm.empty()) *warm_out = r.warm;
  ScalarBound out;
  out.solver.absorb(r);
  if (!r.feasible || !sos::audit(prog, r).ok) return out;
  out.success = true;
  out.value = r.value(t);
  return out;
}

}  // namespace

double RateResult::time_to_reach(double initial_radius, double radius) const {
  if (!(alpha > 0.0) || !(lower_quadratic > 0.0) || !(upper_quadratic > 0.0)) {
    return std::numeric_limits<double>::infinity();
  }
  const double ratio = (upper_quadratic * initial_radius * initial_radius) /
                       (lower_quadratic * radius * radius);
  return ratio <= 1.0 ? 0.0 : std::log(ratio) / alpha;
}

RateResult RateCertifier::certify(const hybrid::HybridSystem& system, std::size_t q,
                                  const Polynomial& v) const {
  RateResult result;
  if (q >= system.modes().size()) {
    result.message = "mode index out of range";
    return result;
  }

  // alpha enters -V̇ - alpha*V affinely since V is numeric here.
  sos::SosProgram prog(system.nvars());
  prog.set_trace_regularization(options_.trace_regularization);
  prog.set_sparsity(options_.solver);
  const LinExpr alpha = prog.add_scalar("alpha");
  prog.add_linear_ge(alpha, "alpha >= 0");
  prog.add_linear_ge(LinExpr(options_.alpha_cap) - alpha, "alpha cap");

  PolyLin expr(-1.0 * v.lie_derivative(system.modes()[q].flow));
  PolyLin alpha_v(system.nvars());
  for (const auto& [m, c] : v.terms()) alpha_v.add_term(m, c * alpha);
  expr -= alpha_v;
  poly::MultiplierSparsity csp = sos::multiplier_plan(system.nvars(), options_.solver);
  csp.couple(expr);
  add_set_multipliers(prog, expr, system.modes()[q].domain, options_.multiplier_degree,
                      "rate.dom", csp);
  add_set_multipliers(prog, expr, system.parameter_set(), options_.multiplier_degree,
                      "rate.u", csp);
  prog.add_sos_constraint(expr, "rate");
  prog.maximize(alpha);

  // Repeated-structure warm start: per-mode rate certifications share one
  // compiled shape, so each solve replays the previous iterate (the blob's
  // fingerprint rejects it when the shape drifted).
  const bool reuse = options_.solver.warm_start;
  const sos::SolveResult solved =
      prog.solve(options_.solver, reuse && !rate_warm_.empty() ? &rate_warm_ : nullptr);
  if (reuse && !solved.warm.empty()) rate_warm_ = solved.warm;
  result.solver.absorb(solved);
  if (sos::solve_hard_failed(solved)) {
    result.message = "rate SOS infeasible (" + sdp::to_string(solved.status) + ")";
    return result;
  }
  result.audit = sos::audit(prog, solved);
  if (!result.audit.ok) {
    result.message = "rate certificate failed audit";
    return result;
  }
  result.alpha = solved.value(alpha);
  result.success = result.alpha > 0.0;

  const ScalarBound lower =
      quadratic_lower(system, q, v, options_,
                      reuse && !lower_warm_.empty() ? &lower_warm_ : nullptr,
                      reuse ? &lower_warm_ : nullptr);
  // The upper envelope shares the lower's compiled *structure* but runs the
  // opposite objective, so the lower's optimum is the worst possible seed
  // for it (the fingerprint cannot tell them apart — it hashes structure,
  // not objective values). Each family therefore keeps its own cache.
  const ScalarBound upper =
      quadratic_upper(system, q, v, options_,
                      reuse && !upper_warm_.empty() ? &upper_warm_ : nullptr,
                      reuse ? &upper_warm_ : nullptr);
  result.solver.merge(lower.solver);
  result.solver.merge(upper.solver);
  if (lower.success) result.lower_quadratic = lower.value;
  if (upper.success) result.upper_quadratic = upper.value;
  util::log_info("rate: alpha=", result.alpha, " m=", result.lower_quadratic,
                 " M=", result.upper_quadratic);
  return result;
}

}  // namespace soslock::core
