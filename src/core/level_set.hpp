#pragma once
// Level-curve maximisation — the paper's second SOS program. For each mode q
// we find the largest c_q with {V_q <= c_q} contained in the mode domain C_q,
// certified constraint-wise by Lemma 1:
//   V_q - c_q + sigma_k * g_k ∈ Σ   (sigma_k ∈ Σ)
// which proves {g_k <= 0} => {V_q >= c_q}, i.e. the open sublevel set lies in
// the interior of C_q. Since c_q enters affinely, the maximisation is a
// single SDP per mode — no bisection needed.
#include <vector>

#include "hybrid/system.hpp"
#include "sos/program.hpp"

namespace soslock::core {

struct LevelSetOptions {
  unsigned multiplier_degree = 2;
  double level_cap = 1e6;  // upper bound keeping the SDP bounded
  /// Worker cap for the per-mode maximisations (independent SDPs, dispatched
  /// through sos::BatchSolver); 0 = hardware concurrency.
  std::size_t threads = 0;
  sdp::SolverConfig solver;
};

struct LevelSetResult {
  bool success = false;
  /// Per-mode maximal levels c_q (paper's c_i^max, plotted in Figs. 2-3).
  std::vector<double> levels;
  /// min_q levels[q]: with jump non-increase, the union of {V_q <= c} over
  /// modes at this common level is invariant under both flow and jumps.
  double consistent_level = 0.0;
  sos::SolveStats solver;  // backend telemetry for Table-2 rows
  std::string message;
};

/// The attractive invariant A_I = union of maximized sublevel sets (Th. 2).
struct AttractiveInvariant {
  std::vector<poly::Polynomial> certificates;  // V_q
  std::vector<double> levels;                  // c_q (per-mode maxima)
  double consistent_level = 0.0;

  /// Membership test (union over modes at per-mode levels).
  bool contains(const linalg::Vector& x_full) const;
  /// Membership at the jump-consistent common level.
  bool contains_consistent(const linalg::Vector& x_full) const;
};

class LevelSetMaximizer {
 public:
  explicit LevelSetMaximizer(LevelSetOptions options = {}) : options_(options) {}

  /// Maximize the level of `v` inside `domain` (one mode). `warm` optionally
  /// replays a structurally matching previous iterate (see
  /// SosProgram::solve); `warm_out`, when non-null, receives this solve's
  /// iterate for chaining. `config` overrides options.solver for this solve
  /// (maximize() passes a thread-rebalanced copy to its concurrent calls).
  LevelSetResult maximize_one(const poly::Polynomial& v,
                              const hybrid::SemialgebraicSet& domain,
                              const sdp::WarmStart* warm = nullptr,
                              sdp::WarmStart* warm_out = nullptr,
                              const sdp::SolverConfig* config = nullptr) const;

  /// All modes of a system; returns per-mode levels + the consistent level.
  /// With options.solver.warm_start the first mode's iterate warm-starts the
  /// remaining modes (PLL mode programs are structurally identical, so this
  /// costs one sequential solve and accelerates the parallel rest).
  LevelSetResult maximize(const hybrid::HybridSystem& system,
                          const std::vector<poly::Polynomial>& certificates) const;

 private:
  LevelSetOptions options_;
};

}  // namespace soslock::core
