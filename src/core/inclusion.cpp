#include "core/inclusion.hpp"

#include <algorithm>
#include <cmath>

#include "poly/sparsity.hpp"
#include "util/log.hpp"

namespace soslock::core {

using hybrid::SemialgebraicSet;
using poly::Polynomial;
using poly::PolyLin;

InclusionResult InclusionChecker::subset(const Polynomial& b1, const Polynomial& b2) const {
  return subset_on(b1, b2, SemialgebraicSet(b1.nvars()));
}

InclusionResult InclusionChecker::subset_on(const Polynomial& b1, const Polynomial& b2,
                                            const SemialgebraicSet& domain,
                                            const sdp::WarmStart* warm,
                                            sdp::WarmStart* warm_out) const {
  InclusionResult result;
  const std::size_t nvars = b1.nvars();

  // Variable scaling to the domain box (conditioning; inclusion between the
  // sets is invariant under the change of coordinates).
  const auto box = hybrid::estimate_box(domain, nvars);
  std::vector<Polynomial> scale_map;
  scale_map.reserve(nvars);
  for (std::size_t i = 0; i < nvars; ++i) {
    const double s = std::max({std::fabs(box[i].first), std::fabs(box[i].second), 1e-9});
    scale_map.push_back(s * Polynomial::variable(nvars, i));
  }
  const Polynomial b1s = b1.substitute(scale_map);
  const Polynomial b2s = b2.substitute(scale_map);

  sos::SosProgram prog(nvars);
  prog.set_trace_regularization(options_.trace_regularization);
  prog.set_sparsity(options_.solver);

  // sigma * b1 - b2 - sum sigma_k g_k ∈ Σ on the domain. The multiplier
  // bases are restricted to the csp cliques of the (scaled) set data; the
  // inclusion sets live on the states, so parameter monomials drop out of
  // every multiplier (lossless — the data never couples them).
  poly::MultiplierSparsity csp = sos::multiplier_plan(nvars, options_.solver);
  csp.couple(b1s);
  csp.couple(b2s);
  const PolyLin sigma = prog.add_sos_poly(
      csp.multiplier_basis(b1s, options_.multiplier_degree), "incl.sigma");
  PolyLin expr = sigma * b1s - PolyLin(b2s);
  for (std::size_t k = 0; k < domain.constraints().size(); ++k) {
    const Polynomial gk = domain.constraints()[k].substitute(scale_map);
    const PolyLin sg = prog.add_sos_poly(
        csp.multiplier_basis(gk, options_.multiplier_degree),
        "incl.dom" + std::to_string(k));
    expr -= sg * gk;
  }
  prog.add_sos_constraint(expr, "incl");

  const sos::SolveResult solved = prog.solve(options_.solver, warm);
  // Infeasible outcomes (a not-yet-immersed iterate) export no blob; keep
  // the caller's previous one rather than clearing its cache.
  if (warm_out != nullptr && !solved.warm.empty()) *warm_out = solved.warm;
  result.solver.absorb(solved);
  if (sos::solve_hard_failed(solved)) {
    result.message = "inclusion SOS infeasible (" + sdp::to_string(solved.status) + ")";
    return result;
  }
  result.audit = sos::audit(prog, solved);
  result.included = result.audit.ok;
  if (!result.audit.ok) result.message = "inclusion certificate failed audit";
  return result;
}

InclusionResult InclusionChecker::subset_of_invariant(
    const Polynomial& b, const hybrid::HybridSystem& system,
    const std::vector<Polynomial>& certificates, double level) const {
  InclusionResult result;
  result.included = true;
  const bool reuse = options_.solver.warm_start;
  for (std::size_t q = 0; q < system.modes().size(); ++q) {
    // S(b) ∩ C_q ⊆ {V_q <= level}: treat V_q - level as the outer set.
    const Polynomial outer = certificates[q] - level;
    sdp::WarmStart& cache = mode_warm_cache_[q];
    const InclusionResult one =
        subset_on(b, outer, system.modes()[q].domain,
                  reuse && !cache.empty() ? &cache : nullptr, reuse ? &cache : nullptr);
    result.audit.checked += one.audit.checked;
    result.audit.failed += one.audit.failed;
    result.solver.merge(one.solver);
    if (!one.included) {
      result.included = false;
      result.failed_modes.push_back(q);
      result.message = "not immersed in mode " + std::to_string(q) + " level set";
    }
  }
  result.audit.ok = result.audit.failed == 0;
  return result;
}

}  // namespace soslock::core
