#include "core/level_set.hpp"

#include "poly/sparsity.hpp"
#include "sos/batch.hpp"
#include "sos/checker.hpp"

#include <algorithm>
#include <cmath>

#include "util/log.hpp"

namespace soslock::core {

using hybrid::SemialgebraicSet;
using poly::LinExpr;
using poly::Polynomial;
using poly::PolyLin;

bool AttractiveInvariant::contains(const linalg::Vector& x_full) const {
  for (std::size_t q = 0; q < certificates.size(); ++q) {
    if (certificates[q].eval(x_full) <= levels[q]) return true;
  }
  return false;
}

bool AttractiveInvariant::contains_consistent(const linalg::Vector& x_full) const {
  for (const Polynomial& v : certificates) {
    if (v.eval(x_full) <= consistent_level) return true;
  }
  return false;
}

LevelSetResult LevelSetMaximizer::maximize_one(const Polynomial& v,
                                               const SemialgebraicSet& domain,
                                               const sdp::WarmStart* warm,
                                               sdp::WarmStart* warm_out,
                                               const sdp::SolverConfig* config) const {
  LevelSetResult result;
  const std::size_t nvars = v.nvars();

  // Scale the variables to the domain box: high-degree monomials over wide
  // voltage boxes otherwise span many orders of magnitude and wreck the SDP
  // conditioning. The level value c is coordinate-free.
  const auto box = hybrid::estimate_box(domain, nvars);
  std::vector<Polynomial> scale_map;
  scale_map.reserve(nvars);
  for (std::size_t i = 0; i < nvars; ++i) {
    const double s = std::max({std::fabs(box[i].first), std::fabs(box[i].second), 1e-9});
    scale_map.push_back(s * Polynomial::variable(nvars, i));
  }
  const Polynomial v_scaled = v.substitute(scale_map);
  SemialgebraicSet domain_scaled(nvars);
  for (const Polynomial& g : domain.constraints())
    domain_scaled.add_constraint(g.substitute(scale_map));

  sos::SosProgram prog(nvars);
  prog.set_sparsity(options_.solver);

  const LinExpr c = prog.add_scalar("c");
  prog.add_linear_ge(c, "c >= 0");
  prog.add_linear_ge(LinExpr(options_.level_cap) - c, "c cap");

  // Multiplier bases restricted to the csp clique of V's variables: the
  // level program never touches the parameters, so their monomials are dead
  // weight in every dense multiplier (a provably lossless restriction).
  poly::MultiplierSparsity csp = sos::multiplier_plan(nvars, options_.solver);
  csp.couple(v_scaled);

  for (std::size_t k = 0; k < domain_scaled.constraints().size(); ++k) {
    const Polynomial& g = domain_scaled.constraints()[k];
    const PolyLin sigma = prog.add_sos_poly(csp.multiplier_basis(g, options_.multiplier_degree),
                                            "lvl.sigma" + std::to_string(k));
    // V - c + sigma * g ∈ Σ  (Lemma 1 with unit multiplier on V - c).
    PolyLin expr = PolyLin(v_scaled);
    expr += sigma * g;
    // Subtract the scalar c as the coefficient of the constant monomial.
    PolyLin c_term(nvars);
    c_term.add_term(poly::Monomial(nvars), c);
    expr -= c_term;
    prog.add_sos_constraint(expr, "lvl.g" + std::to_string(k));
  }

  prog.maximize(c);
  const sos::SolveResult solved =
      prog.solve(config != nullptr ? *config : options_.solver, warm);
  if (warm_out != nullptr && !solved.warm.empty()) *warm_out = solved.warm;
  result.solver.absorb(solved);
  // Audit-based acceptance: a stalled iterate still certifies a (possibly
  // smaller) level; only certified infeasibility or residual blowup fails.
  if (sos::solve_hard_failed(solved)) {
    result.message = "level maximisation failed (" + sdp::to_string(solved.status) + ")";
    return result;
  }
  const sos::AuditReport audit_report = sos::audit(prog, solved);
  if (!audit_report.ok) {
    result.message = "level certificate failed audit";
    return result;
  }
  result.success = true;
  result.levels = {solved.value(c)};
  result.consistent_level = result.levels.front();
  return result;
}

LevelSetResult LevelSetMaximizer::maximize(const hybrid::HybridSystem& system,
                                           const std::vector<Polynomial>& certificates) const {
  LevelSetResult result;
  const std::size_t num_modes = system.modes().size();

  // The per-mode maximisations are independent SDPs: dispatch them onto the
  // batch thread pool (modes after the first failure are skipped, keeping
  // the failure path as cheap as the old sequential early exit). With warm
  // starts on, mode 0 solves first and seeds the remaining modes — their
  // programs are structurally identical (same domain shape, same multiplier
  // degrees), so the previous iterate is a close starting point.
  std::vector<LevelSetResult> per_mode(num_modes);
  const sos::BatchSolver batch(options_.threads);
  const bool reuse = options_.solver.warm_start && num_modes > 1;
  // Concurrent per-mode solves share the backend thread budget (the same
  // anti-oversubscription division BatchSolver::solve_all applies).
  const sdp::SolverConfig batched_cfg =
      batch.effective_config(options_.solver, reuse ? num_modes - 1 : num_modes);
  sdp::WarmStart seed;
  std::size_t failed = num_modes;
  if (reuse) {
    per_mode[0] = maximize_one(certificates[0], system.modes()[0].domain, nullptr, &seed);
    if (!per_mode[0].success) {
      failed = 0;
    } else {
      const std::size_t rest = batch.run_all_until_failure(num_modes - 1, [&](std::size_t i) {
        const std::size_t q = i + 1;
        per_mode[q] = maximize_one(certificates[q], system.modes()[q].domain,
                                   seed.empty() ? nullptr : &seed, nullptr, &batched_cfg);
        return per_mode[q].success;
      });
      if (rest < num_modes - 1) failed = rest + 1;
    }
  } else {
    failed = batch.run_all_until_failure(num_modes, [&](std::size_t q) {
      per_mode[q] = maximize_one(certificates[q], system.modes()[q].domain, nullptr, nullptr,
                                 &batched_cfg);
      return per_mode[q].success;
    });
  }

  for (std::size_t q = 0; q < num_modes; ++q) result.solver.merge(per_mode[q].solver);
  if (failed < num_modes) {
    result.message = "mode " + std::to_string(failed) + ": " + per_mode[failed].message;
    return result;
  }
  result.success = true;
  result.levels.reserve(num_modes);
  for (std::size_t q = 0; q < num_modes; ++q) {
    result.levels.push_back(per_mode[q].levels.front());
    util::log_info("level set: mode ", q, " c_max = ", per_mode[q].levels.front());
  }
  result.consistent_level =
      *std::min_element(result.levels.begin(), result.levels.end());
  return result;
}

}  // namespace soslock::core
