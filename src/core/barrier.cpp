#include "core/barrier.hpp"

#include "core/lyapunov.hpp"
#include "poly/sparsity.hpp"
#include "util/log.hpp"

namespace soslock::core {

using hybrid::SemialgebraicSet;
using poly::Monomial;
using poly::Polynomial;
using poly::PolyLin;

namespace {

void add_set_multipliers(sos::SosProgram& prog, PolyLin& expr, const SemialgebraicSet& set,
                         unsigned degree, const std::string& tag,
                         const poly::MultiplierSparsity& csp) {
  for (std::size_t k = 0; k < set.constraints().size(); ++k) {
    const PolyLin sigma = prog.add_sos_poly(
        csp.multiplier_basis(set.constraints()[k], degree), tag + std::to_string(k));
    expr -= sigma * set.constraints()[k];
  }
}

}  // namespace

BarrierResult BarrierCertifier::certify(const hybrid::HybridSystem& system,
                                        const SemialgebraicSet& initial,
                                        const SemialgebraicSet& unsafe) const {
  BarrierResult result;
  const std::size_t nvars = system.nvars();
  const std::size_t nstates = system.nstates();
  const std::size_t num_modes = system.modes().size();

  sos::SosProgram prog(nvars);
  prog.set_trace_regularization(options_.trace_regularization);
  prog.set_sparsity(options_.solver);

  // Barrier polynomials over the states (constant term included: the zero
  // level surface separates X0 from Xu).
  const std::vector<Monomial> support =
      state_monomials(nvars, nstates, options_.certificate_degree, 0);
  std::vector<PolyLin> b;
  if (options_.common_certificate) {
    b.assign(num_modes, prog.add_poly(support, "B"));
  } else {
    for (std::size_t q = 0; q < num_modes; ++q)
      b.push_back(prog.add_poly(support, "B" + std::to_string(q)));
  }

  // Pre-couple every mode's (and jump's) data before the first multiplier
  // is created: clique bases must come from the full csp graph, not an
  // order-dependent prefix of it.
  poly::MultiplierSparsity csp = sos::multiplier_plan(nvars, options_.solver);
  for (std::size_t q = 0; q < num_modes; ++q) {
    csp.couple(b[q]);
    csp.couple(-b[q].lie_derivative(system.modes()[q].flow));
  }
  if (!options_.common_certificate) {
    for (const auto& jump : system.jumps()) couple_jump_reset(csp, jump, nvars, nstates);
  }
  for (std::size_t q = 0; q < num_modes; ++q) {
    const std::string tag = "barrier.m" + std::to_string(q);
    // (i) B <= 0 on X0: -B - sigmas*g ∈ Σ.
    {
      PolyLin expr = -b[q];
      add_set_multipliers(prog, expr, initial, options_.multiplier_degree, tag + ".x0.", csp);
      prog.add_sos_constraint(expr, tag + ".initial");
    }
    // (ii) B >= margin on Xu: B - margin - sigmas*g ∈ Σ.
    {
      PolyLin expr = b[q] - PolyLin(Polynomial::constant(nvars, options_.unsafe_margin));
      add_set_multipliers(prog, expr, unsafe, options_.multiplier_degree, tag + ".xu.", csp);
      prog.add_sos_constraint(expr, tag + ".unsafe");
    }
    // (iii) dB/dx·f_q <= 0 on C_q x U: -LieB - sigmas*g ∈ Σ.
    {
      PolyLin expr = -b[q].lie_derivative(system.modes()[q].flow);
      add_set_multipliers(prog, expr, system.modes()[q].domain, options_.multiplier_degree,
                          tag + ".flow.", csp);
      add_set_multipliers(prog, expr, system.parameter_set(), options_.multiplier_degree,
                          tag + ".u.", csp);
      prog.add_sos_constraint(expr, tag + ".decrease");
    }
  }

  // (iv) jumps: B_to(R(x)) - B_from(x) <= 0 on guards.
  if (!options_.common_certificate) {
    for (std::size_t l = 0; l < system.jumps().size(); ++l) {
      const auto& jump = system.jumps()[l];
      if (jump.from == jump.to) continue;
      PolyLin b_after;
      if (jump.is_identity_reset()) {
        b_after = b[jump.to];
      } else {
        std::vector<Polynomial> repl;
        for (std::size_t i = 0; i < nstates; ++i) repl.push_back(jump.reset[i]);
        for (std::size_t i = nstates; i < nvars; ++i)
          repl.push_back(Polynomial::variable(nvars, i));
        PolyLin composed(nvars);
        for (const auto& [m, coeff] : b[jump.to].terms()) {
          const Polynomial cm = Polynomial::from_monomial(m, 1.0).substitute(repl);
          for (const auto& [mm, cc] : cm.terms()) composed.add_term(mm, cc * coeff);
        }
        b_after = composed;
      }
      PolyLin expr = b[jump.from] - b_after;
      add_set_multipliers(prog, expr, jump.guard, options_.multiplier_degree,
                          "barrier.j" + std::to_string(l) + ".", csp);
      prog.add_sos_constraint(expr, "barrier.jump" + std::to_string(l));
    }
  }

  // Repeated-structure warm start: successive certify() calls (margin or
  // degree sweeps, per-scenario safety checks) share one compiled shape.
  const bool reuse = options_.solver.warm_start;
  const sos::SolveResult solved =
      prog.solve(options_.solver, reuse && !warm_cache_.empty() ? &warm_cache_ : nullptr);
  if (reuse && !solved.warm.empty()) warm_cache_ = solved.warm;
  result.solver.absorb(solved);
  if (sos::solve_hard_failed(solved)) {
    result.message = "barrier SOS infeasible (" + sdp::to_string(solved.status) + ")";
    return result;
  }
  result.audit = sos::audit(prog, solved);
  if (!result.audit.ok) {
    result.message = "barrier certificate failed audit";
    return result;
  }
  for (std::size_t q = 0; q < num_modes; ++q)
    result.certificates.push_back(solved.value(b[q]).pruned(1e-12));
  result.success = true;
  util::log_info("barrier: synthesized (", result.audit.checked, " identities audited)");
  return result;
}

}  // namespace soslock::core
