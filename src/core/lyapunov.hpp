#pragma once
// Multiple-Lyapunov-certificate synthesis for hybrid systems — the paper's
// SOS program 1 (Sec. 3, Theorem 1/2). For every mode q it searches a
// polynomial V_q with
//   (a) V_q - eps*||x||^2 ∈ Σ on C_q           (positive definiteness),
//   (b) -dV_q/dx · f_q(x,u) ∈ Σ on C_q × U     (flow decrease; strict adds
//       a margin*||x||^2 term — see the DESIGN.md rigor note),
//   (c) V_to(R_l(x)) - V_from(x) <= 0 on D_l   (jump non-increase; optional
//       strict margin),
// with all domain restrictions done by the S-procedure (one SOS multiplier
// per inequality of C_q, D_l and of the parameter box U).
#include <string>
#include <vector>

#include "hybrid/system.hpp"
#include "sos/checker.hpp"
#include "sos/program.hpp"

namespace soslock::core {

enum class FlowDecrease {
  NonStrict,  // -V̇ ∈ Σ (matches the paper's numerics; see DESIGN.md)
  Strict,     // -V̇ - margin*||x||^2 ∈ Σ (infeasible for idle CP PLL mode)
};

struct LyapunovOptions {
  unsigned certificate_degree = 4;   // degree of each V_q (even, >= 2)
  unsigned multiplier_degree = 2;    // degree of S-procedure multipliers (even)
  double positivity_margin = 1e-2;   // eps in (a)
  FlowDecrease flow_decrease = FlowDecrease::NonStrict;
  double strict_margin = 1e-3;       // margin in (b) when Strict
  double jump_margin = 0.0;          // >0 makes (c) strict
  /// When > 0, the flow-decrease condition (b) is only required outside the
  /// ball ||x|| <= exclude_ball_radius (practical stability: attractivity to
  /// a small neighbourhood). Needed when a bounded disturbance (e.g. the
  /// continuization ripple) makes exact decrease at the origin impossible.
  double exclude_ball_radius = 0.0;
  bool common_certificate = false;   // single V for all modes (ablation)
  /// Build each V_q over the cliques of the flow-coupling graph (see
  /// sparse_state_monomials) instead of the dense state-monomial template.
  /// On separable models (the clock-tree cascades) this keeps the
  /// derivative's correlative-sparsity graph non-complete, so
  /// SparsityOptions::Correlative genuinely splits the Gram blocks; on
  /// fully-coupled models it degenerates to the dense template. A sound
  /// restriction either way (any found V is independently audited).
  bool sparse_template = false;
  /// Minimize the integral of V over the state box so the (later maximized)
  /// sublevel sets fill the mode domains — the paper's attractive invariants
  /// span essentially the whole voltage box (Figs. 2-3).
  bool maximize_region = false;
  double trace_regularization = 1e-7;
  /// Solve the modes as independent per-mode SOS programs on a thread pool
  /// (sos::BatchSolver) instead of one joint SDP. The only cross-mode
  /// coupling is the jump non-increase condition (c), so the decoupled
  /// certificates are re-audited against every jump afterwards; when a jump
  /// audit fails the synthesizer falls back to the joint coupled solve.
  bool mode_parallel = false;
  /// Worker cap for mode_parallel; 0 = hardware concurrency.
  std::size_t threads = 0;
  sdp::SolverConfig solver;
};

struct LyapunovResult {
  bool success = false;
  /// One certificate per mode (all identical when common_certificate).
  std::vector<poly::Polynomial> certificates;
  sos::AuditReport audit;        // independent certificate re-check
  sdp::SolveStatus status = sdp::SolveStatus::NumericalProblem;
  sos::SolveStats solver;        // backend telemetry for Table-2 rows
  std::string message;
};

/// A built (not yet solved) joint synthesis program: the SosProgram plus the
/// unknown certificate polynomial of every mode (all identical under
/// common_certificate). Exposed so external drivers — the design-space sweep
/// service (src/sweep) most of all — reuse the certifier's exact program
/// shape, solve it through their own backend / lowering cache, and audit the
/// result with sos::audit.
struct LyapunovProgram {
  sos::SosProgram program;
  std::vector<poly::PolyLin> v;
};

/// Build the joint multiple-Lyapunov SOS program for `system`: conditions
/// (a)-(c) with S-procedure restrictions, plus the maximize_region moment
/// objective when requested. The caller is responsible for a valid system
/// and an even certificate degree >= 2 (LyapunovSynthesizer::synthesize
/// checks both before coming here).
LyapunovProgram build_lyapunov_program(const hybrid::HybridSystem& system,
                                       const LyapunovOptions& options);

class LyapunovSynthesizer {
 public:
  explicit LyapunovSynthesizer(LyapunovOptions options = {}) : options_(options) {}

  /// Synthesize certificates for `system`. States are variables
  /// [0, nstates); parameters enter through system.parameter_set().
  /// With options.mode_parallel the per-mode programs are solved
  /// concurrently and the jump coupling is re-audited afterwards (falling
  /// back to the joint coupled SDP when that audit fails).
  LyapunovResult synthesize(const hybrid::HybridSystem& system) const;

  const LyapunovOptions& options() const { return options_; }

 private:
  LyapunovResult synthesize_joint(const hybrid::HybridSystem& system) const;
  LyapunovResult synthesize_decoupled(const hybrid::HybridSystem& system) const;

  LyapunovOptions options_;
};

/// Monomials of total degree in [min_deg, max_deg] involving only the first
/// `nstates` of `nvars` variables (certificates must not depend on u).
std::vector<poly::Monomial> state_monomials(std::size_t nvars, std::size_t nstates,
                                            unsigned max_deg, unsigned min_deg);

/// Clique-structured certificate template (LyapunovOptions::sparse_template):
/// monomials of total degree in [min_deg, max_deg] over each clique of the
/// chordal extension of the flow-coupling graph (x_i ~ x_j iff x_j appears
/// in some mode's f_i), unioned and deduplicated. Equals state_monomials
/// when the coupling graph is complete.
std::vector<poly::Monomial> sparse_state_monomials(const hybrid::HybridSystem& system,
                                                   unsigned max_deg, unsigned min_deg);

/// Couple the variables a jump's reset map entangles into a csp multiplier
/// plan: a certificate composed with the reset couples, within one monomial,
/// the union of every reset component's variables plus the states —
/// over-approximated soundly by a single monomial over all of them.
/// Identity resets add nothing. Shared by the Lyapunov and barrier
/// certifiers (both pre-couple every jump before drawing multiplier bases).
void couple_jump_reset(poly::MultiplierSparsity& csp, const hybrid::Jump& jump,
                       std::size_t nvars, std::size_t nstates);

}  // namespace soslock::core
