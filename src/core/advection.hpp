#pragma once
// Bounded advection of polynomial level sets (the paper's Eq. 6, extending
// Wang-Lall-West to hybrid systems). One step finds a polynomial b_next whose
// backward first-order-Taylor advection sandwiches the previous set:
//
//   S(b_prev)  ⊆  S(T_q b_next + gamma)            (progress, per mode q)
//   S(T_q b_next - gamma)  ⊆  S(b_prev - eps)      (bounded step, per mode)
//   |R_q| <= kappa on S(b_prev - eps) ∩ C_q        (Taylor truncation bound)
//
// where T_q b = b - h * grad(b)·f_q is the first-order backward advection map
// and R_q = (h^2/2) f_q' Hess(b) f_q the second-order term, with kappa <=
// gamma so the chain S(b_prev) ⊆ E_{-h}(S(b_next)) is rigorous. All mode
// domains C_q and the parameter box constrain each condition through the
// S-procedure. Because all jump maps are identity after the Remark-1
// reduction, level sets pass through jumps unchanged (paper's Remark 2) and
// one common b covers all modes.
#include <vector>

#include "hybrid/system.hpp"
#include "sos/checker.hpp"
#include "sos/program.hpp"

namespace soslock::core {

struct AdvectionOptions {
  double h = 0.05;                  // advection time step (normalized time)
  double gamma = 0.02;              // precision parameter
  double eps = 0.5;                 // per-step inflation bound (bisected up)
  double curvature_fraction = 0.5;  // kappa = fraction * gamma
  unsigned set_degree = 2;          // degree of the advected polynomials
  unsigned multiplier_degree = 2;
  double origin_margin = 1e-3;      // b_next(0) <= -margin
  int eps_retries = 4;              // eps doublings when infeasible
  double trace_regularization = 1e-7;
  /// Volume-proxy tightness objective: maximize the integral of b_next over
  /// this box (per-state bounds), so the sublevel set hugs the forward image
  /// instead of drifting outward within the sandwich slack. Empty = derive
  /// from the union of affine mode-domain bounds (fallback [-1, 1]).
  std::vector<std::pair<double, double>> integration_box;
  /// Bound on |coefficients| of b_next; keeps the volume-proxy maximisation
  /// bounded (outside S(b_prev) the constraints do not cap b_next above).
  double coeff_cap = 50.0;
  /// Constant S-procedure multiplier lambda on (T b_next - gamma) in the
  /// bounded-step condition (B); valid for any lambda >= 0, and lambda > 1
  /// is needed when b_prev grows faster than T b_next at infinity. A small
  /// ladder {1, lambda, lambda^2} is tried automatically.
  double preimage_multiplier = 2.0;
  /// Accepted iterates are rescaled so b(0) = -origin_normalization,
  /// preventing unbounded steepening across iterations (the set is
  /// scale-invariant).
  double origin_normalization = 0.5;
  sdp::SolverConfig solver;
};

struct AdvectionStepResult {
  bool success = false;
  poly::Polynomial next;
  double eps_used = 0.0;
  sos::AuditReport audit;
  sos::SolveStats solver;  // backend telemetry for Table-2 rows
  std::string message;
};

class AdvectionEngine {
 public:
  AdvectionEngine(const hybrid::HybridSystem& system, AdvectionOptions options)
      : system_(system), options_(options) {}

  /// One advection step from the level set {b_prev <= 0}.
  AdvectionStepResult step(const poly::Polynomial& b_prev) const;

  const AdvectionOptions& options() const { return options_; }

 private:
  AdvectionStepResult step_with_eps(const poly::Polynomial& b_prev, double eps,
                                    double lambda) const;

  const hybrid::HybridSystem& system_;
  AdvectionOptions options_;
  /// Iterate of the most recent SDP solve, replayed into the next attempt
  /// when the compiled structure matches (the eps/lambda retry ladder and
  /// successive advection steps share one program shape, so nearly every
  /// solve after the first starts warm). Gated by options.solver.warm_start;
  /// the engine is driven sequentially, so no synchronization is needed.
  mutable sdp::WarmStart warm_cache_;
};

}  // namespace soslock::core
