#pragma once
// Escape certificates (the paper's Proposition 1 / Algorithm 1 lines 14-18).
// For the region where advection is inconclusive,
//   T_q = S(b) ∩ {V_q >= level} ∩ C_q x U,
// we search a differentiable E with dE/dx · f_q <= -rho (rho > 0) on T_q.
// Trajectories then leave T_q in finite time; since they cannot cross back
// through the advected front, they enter the attractive invariant.
#include <vector>

#include "hybrid/system.hpp"
#include "sos/checker.hpp"
#include "sos/program.hpp"

namespace soslock::core {

struct EscapeOptions {
  unsigned certificate_degree = 4;  // degree of E (the paper used degree 4)
  unsigned multiplier_degree = 2;
  double rho_cap = 10.0;            // keeps "maximize rho" bounded
  double rho_min = 1e-6;            // required certified decrease rate
  double coeff_cap = 100.0;         // bound on |E| coefficients (scale fix)
  bool per_mode = true;             // one certificate per mode (as the paper)
  double trace_regularization = 1e-7;
  /// Worker cap for the per-mode certificate solves (independent SDPs when
  /// per_mode, dispatched through sos::BatchSolver); 0 = hardware concurrency.
  std::size_t threads = 0;
  sdp::SolverConfig solver;
};

struct EscapeResult {
  bool success = false;
  /// One certificate per requested mode (repeated when a common E is used).
  std::vector<poly::Polynomial> certificates;
  std::vector<double> rates;        // certified rho per mode
  int num_certificates = 0;
  sos::AuditReport audit;
  sos::SolveStats solver;           // backend telemetry for Table-2 rows
  std::string message;
};

class EscapeCertifier {
 public:
  explicit EscapeCertifier(EscapeOptions options = {}) : options_(options) {}

  /// Certify escape from S(region) ∩ {V_q >= level} for each mode in `modes`.
  EscapeResult certify(const hybrid::HybridSystem& system,
                       const std::vector<std::size_t>& modes,
                       const poly::Polynomial& region,
                       const std::vector<poly::Polynomial>& certificates,
                       double level) const;

  /// Escape from an arbitrary semialgebraic set under one mode's flow
  /// (building block; also used directly by tests and examples).
  EscapeResult certify_set(const hybrid::HybridSystem& system, std::size_t mode,
                           const hybrid::SemialgebraicSet& set) const;

 private:
  EscapeOptions options_;
};

}  // namespace soslock::core
