#pragma once
// Certified exponential convergence rates — the quantitative companion of
// the inevitability property, connecting to the "time to locking" property
// verified by Althoff et al. [2] and Lin et al. [6] (paper Sec. 1.1).
//
// Given a Lyapunov certificate V for a mode's flow, we maximize alpha with
//   -dV/dx·f - alpha*V ∈ Σ on C x U      (S-procedure as usual)
// so V(x(t)) <= V(x(0)) e^{-alpha t} along all flows in the domain. Combined
// with bounds  m*||x||^2 <= V <= M*||x||^2  (also certified here), this gives
// an explicit bound on the time to reach any sublevel set — e.g. the time to
// phase lock from the initial region.
#include "hybrid/system.hpp"
#include "sos/checker.hpp"
#include "sos/program.hpp"

namespace soslock::core {

struct RateOptions {
  unsigned multiplier_degree = 2;
  double alpha_cap = 100.0;   // keeps the maximisation bounded
  double trace_regularization = 1e-7;
  sdp::SolverConfig solver;
};

struct RateResult {
  bool success = false;
  double alpha = 0.0;         // certified decay rate of V
  /// Certified quadratic envelope m*||x||^2 <= V <= M*||x||^2 on the domain
  /// (0 when the corresponding bound could not be certified).
  double lower_quadratic = 0.0;   // m
  double upper_quadratic = 0.0;   // M
  sos::AuditReport audit;
  sos::SolveStats solver;          // backend telemetry (all three programs)
  std::string message;

  /// Upper bound on the time for ||x|| to fall below `radius` starting from
  /// ||x0|| <= initial_radius:  t <= (1/alpha) ln( M r0^2 / (m r^2) ).
  double time_to_reach(double initial_radius, double radius) const;
};

class RateCertifier {
 public:
  explicit RateCertifier(RateOptions options = {}) : options_(options) {}

  /// Certify a decay rate of `v` along mode `q` of `system`.
  RateResult certify(const hybrid::HybridSystem& system, std::size_t q,
                     const poly::Polynomial& v) const;

 private:
  RateOptions options_;
  /// Iterates of the most recent rate / quadratic-envelope solves, replayed
  /// into the next certify() call (per-mode certification loops share one
  /// compiled shape per program family; a mismatched blob is rejected by its
  /// fingerprint and solves cold). Gated by options.solver.warm_start; the
  /// certifier is driven sequentially, so no synchronization is needed.
  mutable sdp::WarmStart rate_warm_, lower_warm_, upper_warm_;
};

}  // namespace soslock::core
