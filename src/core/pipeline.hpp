#pragma once
// End-to-end inevitability verification (the paper's Sec. 3 methodology and
// Algorithm 1):
//   P1: synthesize multiple Lyapunov certificates (SOS program 1), maximize
//       their level curves (SOS program 2)  ->  attractive invariant R1.
//   P2: advect the initial level set S(b_init) until it is certified immersed
//       in R1; if advection is inconclusive after N iterations, close the
//       argument with escape certificates on the residual region.
// Every step is timed so the whole report regenerates the paper's Table 2.
#include <string>
#include <vector>

#include "core/advection.hpp"
#include "core/escape.hpp"
#include "core/inclusion.hpp"
#include "core/level_set.hpp"
#include "core/lyapunov.hpp"
#include "util/timer.hpp"

namespace soslock::core {

enum class Verdict {
  VerifiedByAdvection,      // P1 ∧ P2 via immersion
  VerifiedWithEscape,       // P1 ∧ P2 via immersion + escape certificates
  AttractiveInvariantOnly,  // P1 proved, P2 inconclusive (paper's "No Answer")
  Failed,                   // no attractive invariant found
};

std::string to_string(Verdict verdict);

struct PipelineOptions {
  LyapunovOptions lyapunov;
  LevelSetOptions level;
  AdvectionOptions advection;
  EscapeOptions escape;
  InclusionOptions inclusion;
  int max_advection_iterations = 20;  // the paper's bounded N
  bool escape_fallback = true;        // Algorithm 1 lines 13-18

  /// Route every SOS query of the pipeline through one solver backend
  /// ("ipm" | "admm" | "auto" | any registered name).
  void use_backend(const std::string& name) {
    lyapunov.solver.backend = name;
    level.solver.backend = name;
    advection.solver.backend = name;
    escape.solver.backend = name;
    inclusion.solver.backend = name;
  }

  /// Worker cap for every batched per-mode stage (0 = hardware concurrency).
  void use_threads(std::size_t threads) {
    lyapunov.threads = threads;
    level.threads = threads;
    escape.threads = threads;
  }

  /// Sparsity exploitation of every SOS query in the pipeline: Correlative
  /// splits Gram bases along csp-graph cliques, Chordal additionally
  /// decomposes remaining large PSD blocks at the SDP level (sdp/chordal).
  void use_sparsity(sdp::SparsityOptions sparsity) {
    lyapunov.solver.sparsity = sparsity;
    level.solver.sparsity = sparsity;
    advection.solver.sparsity = sparsity;
    escape.solver.sparsity = sparsity;
    inclusion.solver.sparsity = sparsity;
  }
};

struct PipelineReport {
  Verdict verdict = Verdict::Failed;
  LyapunovResult lyapunov;
  LevelSetResult levels;
  AttractiveInvariant invariant;
  /// b_0 = initial set, then one entry per advection step.
  std::vector<poly::Polynomial> advection_iterates;
  int advection_iterations = 0;
  bool advection_included = false;
  std::vector<std::size_t> residual_modes;  // where immersion failed
  EscapeResult escape;
  util::TimingTable timings;  // rows named after the paper's Table 2
  std::string message;

  std::string summary() const;
};

class InevitabilityVerifier {
 public:
  explicit InevitabilityVerifier(PipelineOptions options = {}) : options_(options) {}

  /// Verify inevitability of the origin equilibrium of `system`, starting
  /// from the initial region S(b_init) = {b_init <= 0}.
  PipelineReport verify(const hybrid::HybridSystem& system,
                        const poly::Polynomial& b_init) const;

  const PipelineOptions& options() const { return options_; }

 private:
  PipelineOptions options_;
};

}  // namespace soslock::core
