#include "core/lyapunov.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "poly/basis.hpp"
#include "poly/sparsity.hpp"
#include "sos/batch.hpp"
#include "util/log.hpp"

namespace soslock::core {

using hybrid::HybridSystem;
using hybrid::Jump;
using hybrid::Mode;
using poly::Monomial;
using poly::Polynomial;
using poly::PolyLin;

std::vector<Monomial> state_monomials(std::size_t nvars, std::size_t nstates, unsigned max_deg,
                                      unsigned min_deg) {
  const std::vector<Monomial> base = poly::monomials_up_to(nstates, max_deg, min_deg);
  std::vector<Monomial> out;
  out.reserve(base.size());
  for (const Monomial& m : base) {
    Monomial big(nvars);
    for (std::size_t i = 0; i < nstates; ++i) big.set_exponent(i, m.exponent(i));
    out.push_back(big);
  }
  return out;
}

std::vector<Monomial> sparse_state_monomials(const HybridSystem& system, unsigned max_deg,
                                             unsigned min_deg) {
  const std::size_t nstates = system.nstates();
  const std::size_t nvars = system.nvars();
  // Flow-coupling graph over the states: x_i ~ x_j iff x_j appears in some
  // mode's f_i (symmetrized). Parameters never enter the certificate.
  util::Adjacency adj(nstates, std::vector<bool>(nstates, false));
  for (const Mode& mode : system.modes()) {
    for (std::size_t i = 0; i < nstates && i < mode.flow.size(); ++i) {
      for (const auto& [m, c] : mode.flow[i].terms()) {
        for (std::size_t j = 0; j < nstates; ++j) {
          if (j != i && m.exponent(j) > 0) {
            adj[i][j] = true;
            adj[j][i] = true;
          }
        }
      }
    }
  }
  const util::CliqueForest forest = util::chordal_cliques(nstates, adj);
  // One monomial survives iff its variables fit inside some clique; a
  // single scan of the dense template against all cliques keeps the cost at
  // one enumeration regardless of how many cliques the tree splits into.
  std::vector<std::vector<bool>> in_clique(forest.cliques.size(),
                                           std::vector<bool>(nstates, false));
  for (std::size_t k = 0; k < forest.cliques.size(); ++k)
    for (const std::size_t v : forest.cliques[k]) in_clique[k][v] = true;
  std::vector<Monomial> out;
  for (const Monomial& m : state_monomials(nvars, nstates, max_deg, min_deg)) {
    for (const auto& mask : in_clique) {
      bool covered = true;
      for (std::size_t i = 0; i < nstates && covered; ++i)
        if (m.exponent(i) > 0 && !mask[i]) covered = false;
      if (covered) {
        out.push_back(m);
        break;
      }
    }
  }
  return out;
}

void couple_jump_reset(poly::MultiplierSparsity& csp, const Jump& jump,
                       std::size_t nvars, std::size_t nstates) {
  if (jump.from == jump.to || jump.is_identity_reset()) return;
  Monomial coupled(nvars);
  for (std::size_t i = 0; i < nstates; ++i) coupled.set_exponent(i, 1);
  for (std::size_t i = 0; i < nstates; ++i) {
    for (const auto& [m, c] : jump.reset[i].terms()) {
      for (std::size_t var = 0; var < nvars; ++var) {
        if (m.exponent(var) > 0) coupled.set_exponent(var, 1);
      }
    }
  }
  csp.couple(std::vector<Monomial>{coupled});
}

namespace {

/// Add S-procedure multipliers for every constraint of `set`, subtracting
/// sigma_k * g_k from `expr`. With sparsity enabled, each multiplier's Gram
/// basis is restricted to the csp clique covering vars(g_k) (see
/// poly::MultiplierSparsity); otherwise it runs over all variables.
void subtract_multipliers(sos::SosProgram& prog, PolyLin& expr,
                          const hybrid::SemialgebraicSet& set, unsigned multiplier_degree,
                          const std::string& label, const poly::MultiplierSparsity& csp) {
  for (std::size_t k = 0; k < set.constraints().size(); ++k) {
    const Polynomial& g = set.constraints()[k];
    const PolyLin sigma = prog.add_sos_poly(csp.multiplier_basis(g, multiplier_degree),
                                            label + ".sigma" + std::to_string(k));
    expr -= sigma * g;
  }
}


/// Conditions (a) positivity and (b) flow decrease for one mode; shared by
/// the joint and the decoupled (mode-parallel) synthesis paths.
void add_mode_conditions(sos::SosProgram& prog, const PolyLin& v_q, const HybridSystem& system,
                         std::size_t q, const LyapunovOptions& options,
                         const Polynomial& x_norm2, poly::MultiplierSparsity& csp) {
  const Mode& mode = system.modes()[q];
  const std::string tag = "mode" + std::to_string(q);
  const unsigned deg_sigma = options.multiplier_degree;

  // (a) positivity: V_q - eps*|x|^2 - sum sigma*g ∈ Σ on C_q.
  {
    PolyLin expr = v_q - PolyLin(options.positivity_margin * x_norm2);
    csp.couple(expr);
    subtract_multipliers(prog, expr, mode.domain, deg_sigma, tag + ".pos", csp);
    prog.add_sos_constraint(expr, tag + ".positivity");
  }

  // (b) flow decrease: -V̇_q - [margin*|x|^2] - sum sigma*g - sum sigma*gu ∈ Σ.
  {
    PolyLin expr = -v_q.lie_derivative(mode.flow);
    if (options.flow_decrease == FlowDecrease::Strict) {
      expr -= PolyLin(options.strict_margin * x_norm2);
    }
    csp.couple(expr);
    subtract_multipliers(prog, expr, mode.domain, deg_sigma, tag + ".flow", csp);
    subtract_multipliers(prog, expr, system.parameter_set(), deg_sigma, tag + ".flowu", csp);
    if (options.exclude_ball_radius > 0.0) {
      // Decrease required only on {||x||^2 >= r^2}.
      const double r2 = options.exclude_ball_radius * options.exclude_ball_radius;
      hybrid::SemialgebraicSet outside(prog.nvars());
      outside.add_constraint(x_norm2 - r2);
      subtract_multipliers(prog, expr, outside, deg_sigma, tag + ".ball", csp);
    }
    prog.add_sos_constraint(expr, tag + ".decrease");
  }
}

/// Normalized box-average objective for one mode's certificate (the
/// maximize_region volume proxy; see the joint path for the rationale).
poly::LinExpr mode_moment_objective(const PolyLin& v_q,
                                    const std::vector<std::pair<double, double>>& box,
                                    std::size_t nstates) {
  poly::LinExpr objective;
  for (const auto& [m, coeff] : v_q.terms()) {
    double moment = 1.0;
    for (std::size_t i = 0; i < nstates; ++i) {
      const auto [lo, hi] = box[i];
      const double p = static_cast<double>(m.exponent(i)) + 1.0;
      moment *= (std::pow(hi, p) - std::pow(lo, p)) / (p * std::max(hi - lo, 1e-12));
    }
    objective += moment * coeff;
  }
  return objective;
}

/// V_to composed with the (numeric) reset map of `jump`.
Polynomial compose_with_reset(const Polynomial& v_to, const Jump& jump, std::size_t nvars,
                              std::size_t nstates) {
  if (jump.is_identity_reset()) return v_to;
  std::vector<Polynomial> repl;
  repl.reserve(nvars);
  for (std::size_t i = 0; i < nstates; ++i) repl.push_back(jump.reset[i]);
  for (std::size_t i = nstates; i < nvars; ++i) repl.push_back(Polynomial::variable(nvars, i));
  return v_to.substitute(repl);
}

}  // namespace

LyapunovResult LyapunovSynthesizer::synthesize(const HybridSystem& system) const {
  LyapunovResult result;
  const std::string invalid = system.validate();
  if (!invalid.empty()) {
    result.message = "invalid hybrid system: " + invalid;
    return result;
  }
  if (options_.certificate_degree < 2 || options_.certificate_degree % 2 != 0) {
    result.message = "certificate degree must be even and >= 2";
    return result;
  }

  if (options_.mode_parallel && !options_.common_certificate && system.modes().size() > 1) {
    LyapunovResult decoupled = synthesize_decoupled(system);
    if (decoupled.success) return decoupled;
    util::log_info("lyapunov: decoupled synthesis not accepted (", decoupled.message,
                   "); falling back to the joint coupled program");
    LyapunovResult joint = synthesize_joint(system);
    joint.solver.merge(decoupled.solver);  // account for the attempted solves
    return joint;
  }
  return synthesize_joint(system);
}

LyapunovProgram build_lyapunov_program(const HybridSystem& system,
                                       const LyapunovOptions& options) {
  LyapunovProgram lp{sos::SosProgram(system.nvars()), {}};
  const std::size_t nstates = system.nstates();
  const std::size_t nvars = system.nvars();
  const unsigned deg_v = options.certificate_degree;
  const unsigned deg_sigma = options.multiplier_degree;

  sos::SosProgram& prog = lp.program;
  prog.set_trace_regularization(options.trace_regularization);
  prog.set_sparsity(options.solver);

  // Unknown certificates: monomials of degree 2..deg_v in the states only
  // (V(0) = 0 by construction; no linear terms so the origin can be a local
  // minimum); clique-structured under sparse_template.
  const std::vector<Monomial> v_support =
      options.sparse_template ? sparse_state_monomials(system, deg_v, 2)
                              : state_monomials(nvars, nstates, deg_v, 2);
  std::vector<PolyLin>& v = lp.v;
  const std::size_t num_modes = system.modes().size();
  if (options.common_certificate) {
    const PolyLin shared = prog.add_poly(v_support, "V");
    v.assign(num_modes, shared);
  } else {
    for (std::size_t q = 0; q < num_modes; ++q)
      v.push_back(prog.add_poly(v_support, "V" + std::to_string(q)));
  }

  const Polynomial x_norm2 = poly::squared_norm(nvars, nstates);

  // Pre-couple the data of *every* mode and jump before the first
  // multiplier is created: clique bases must come from the full csp graph,
  // not the prefix built so far (an order-dependent under-coupled basis
  // would be a stricter restriction than the Waki relaxation intends).
  poly::MultiplierSparsity csp = sos::multiplier_plan(nvars, options.solver);
  for (std::size_t q = 0; q < num_modes; ++q) {
    csp.couple(v[q] - PolyLin(options.positivity_margin * x_norm2));
    csp.couple(-v[q].lie_derivative(system.modes()[q].flow));
  }
  if (!options.common_certificate) {
    for (const Jump& jump : system.jumps()) couple_jump_reset(csp, jump, nvars, nstates);
  }
  for (std::size_t q = 0; q < num_modes; ++q)
    add_mode_conditions(prog, v[q], system, q, options, x_norm2, csp);

  // (c) jumps: V_to(R(x)) - V_from(x) <= -jump_margin on each guard.
  if (!options.common_certificate) {
    for (std::size_t l = 0; l < system.jumps().size(); ++l) {
      const Jump& jump = system.jumps()[l];
      if (jump.from == jump.to) continue;
      PolyLin v_to_after;  // V_to composed with the reset map
      if (jump.is_identity_reset()) {
        v_to_after = v[jump.to];
      } else {
        // Compose each monomial of the unknown V_to with the numeric reset.
        PolyLin composed(nvars);
        std::vector<Polynomial> repl;
        repl.reserve(nvars);
        for (std::size_t i = 0; i < nstates; ++i) repl.push_back(jump.reset[i]);
        for (std::size_t i = nstates; i < nvars; ++i)
          repl.push_back(Polynomial::variable(nvars, i));
        for (const auto& [m, coeff] : v[jump.to].terms()) {
          const Polynomial composed_monomial =
              Polynomial::from_monomial(m, 1.0).substitute(repl);
          for (const auto& [mm, cc] : composed_monomial.terms())
            composed.add_term(mm, cc * coeff);
        }
        v_to_after = composed;
      }
      PolyLin expr = v[jump.from] - v_to_after;
      if (options.jump_margin > 0.0) {
        expr -= PolyLin(options.jump_margin * x_norm2);
      }
      const std::string tag = "jump" + std::to_string(l);
      csp.couple(expr);
      subtract_multipliers(prog, expr, jump.guard, deg_sigma, tag, csp);
      prog.add_sos_constraint(expr, tag + ".nonincrease");
    }
  }

  if (options.maximize_region) {
    // Fatten the eventual level sets: minimize sum_q int_box V_q. Normalized
    // moments (box averages) keep the objective O(1) per coefficient — raw
    // moments over wide voltage boxes reach 1e5 and wreck the conditioning.
    const auto box = hybrid::estimate_state_box(system);
    poly::LinExpr objective;
    for (std::size_t q = 0; q < num_modes; ++q) {
      objective += mode_moment_objective(v[q], box, nstates);
      if (options.common_certificate) break;
    }
    prog.minimize(objective);
  }
  return lp;
}

LyapunovResult LyapunovSynthesizer::synthesize_joint(const HybridSystem& system) const {
  LyapunovResult result;
  const std::size_t num_modes = system.modes().size();
  LyapunovProgram lp = build_lyapunov_program(system, options_);
  const sos::SosProgram& prog = lp.program;
  const std::vector<PolyLin>& v = lp.v;

  const sos::SolveResult solved = prog.solve(options_.solver);
  result.status = solved.status;
  result.solver.absorb(solved);
  // Acceptance policy: reject certified-infeasible outcomes outright; for
  // anything else (including objective-stalled MaxIterations iterates) the
  // independent audit below is the verdict — a feasible-but-suboptimal
  // iterate still yields sound certificates.
  if (sos::solve_hard_failed(solved)) {
    result.message = "SOS program infeasible or unsolved (" + sdp::to_string(solved.status) + ")";
    return result;
  }

  result.audit = sos::audit(prog, solved);
  result.certificates.reserve(num_modes);
  for (std::size_t q = 0; q < num_modes; ++q) {
    result.certificates.push_back(solved.value(v[q]).pruned(1e-12));
  }
  result.success = result.audit.ok;
  if (!result.audit.ok) {
    result.message = "certificate audit failed: " +
                     (result.audit.failures.empty() ? "?" : result.audit.failures.front());
  }
  util::log_info("lyapunov: status=", sdp::to_string(result.status),
                 " audit_ok=", result.audit.ok, " worst_residual=", result.audit.worst_residual,
                 " ", result.solver.str());
  return result;
}

LyapunovResult LyapunovSynthesizer::synthesize_decoupled(const HybridSystem& system) const {
  LyapunovResult result;
  const std::size_t nstates = system.nstates();
  const std::size_t nvars = system.nvars();
  const std::size_t num_modes = system.modes().size();
  const Polynomial x_norm2 = poly::squared_norm(nvars, nstates);
  const std::vector<Monomial> v_support =
      options_.sparse_template
          ? sparse_state_monomials(system, options_.certificate_degree, 2)
          : state_monomials(nvars, nstates, options_.certificate_degree, 2);

  // Build one SOS program per mode: conditions (a) and (b) only touch mode q,
  // and the maximize_region objective separates across modes, so the only
  // cross-mode coupling is the jump condition (c) — re-audited below.
  std::vector<sos::SosProgram> progs;
  std::vector<PolyLin> v;
  progs.reserve(num_modes);
  v.reserve(num_modes);
  const auto box = options_.maximize_region ? hybrid::estimate_state_box(system)
                                            : std::vector<std::pair<double, double>>{};
  for (std::size_t q = 0; q < num_modes; ++q) {
    progs.emplace_back(nvars);
    progs[q].set_trace_regularization(options_.trace_regularization);
    progs[q].set_sparsity(options_.solver);
    v.push_back(progs[q].add_poly(v_support, "V" + std::to_string(q)));
    // Pre-couple both of the mode's targets before the first multiplier is
    // drawn (same invariant as the joint path: clique bases come from the
    // full per-program csp graph, not an order-dependent prefix).
    poly::MultiplierSparsity csp = sos::multiplier_plan(nvars, options_.solver);
    csp.couple(v[q] - PolyLin(options_.positivity_margin * x_norm2));
    csp.couple(-v[q].lie_derivative(system.modes()[q].flow));
    add_mode_conditions(progs[q], v[q], system, q, options_, x_norm2, csp);
    if (options_.maximize_region)
      progs[q].minimize(mode_moment_objective(v[q], box, nstates));
  }

  // With warm starts on, mode 0 solves first and its iterate seeds the
  // remaining (structurally identical) mode programs on the pool.
  const sos::BatchSolver batch(options_.threads);
  std::vector<sos::SolveResult> solves(num_modes);
  if (options_.solver.warm_start && num_modes > 1) {
    solves[0] = progs[0].solve(options_.solver);
    const sdp::WarmStart& seed = solves[0].warm;
    // Mode 0 ran alone (full thread budget); the concurrent rest share it.
    const sdp::SolverConfig batched_cfg =
        batch.effective_config(options_.solver, num_modes - 1);
    batch.run_all(num_modes - 1, [&](std::size_t i) {
      solves[i + 1] = progs[i + 1].solve(batched_cfg, seed.empty() ? nullptr : &seed);
    });
  } else {
    std::vector<const sos::SosProgram*> prog_ptrs;
    prog_ptrs.reserve(num_modes);
    for (const sos::SosProgram& p : progs) prog_ptrs.push_back(&p);
    solves = batch.solve_all(prog_ptrs, options_.solver);
  }

  result.status = sdp::SolveStatus::Optimal;
  result.certificates.reserve(num_modes);
  for (std::size_t q = 0; q < num_modes; ++q) {
    result.solver.absorb(solves[q]);
    if (solves[q].status != sdp::SolveStatus::Optimal) result.status = solves[q].status;
    if (sos::solve_hard_failed(solves[q])) {
      result.message = "mode " + std::to_string(q) + " SOS program infeasible or unsolved (" +
                       sdp::to_string(solves[q].status) + ")";
      return result;
    }
    const sos::AuditReport mode_audit = sos::audit(progs[q], solves[q]);
    result.audit.checked += mode_audit.checked;
    result.audit.failed += mode_audit.failed;
    result.audit.worst_residual = std::max(result.audit.worst_residual, mode_audit.worst_residual);
    result.audit.worst_eigenvalue =
        std::min(result.audit.worst_eigenvalue, mode_audit.worst_eigenvalue);
    for (const std::string& f : mode_audit.failures) result.audit.failures.push_back(f);
    if (!mode_audit.ok) {
      result.message = "mode " + std::to_string(q) + " certificate audit failed";
      return result;
    }
    result.certificates.push_back(solves[q].value(v[q]).pruned(1e-12));
  }

  // Jump re-audit: the decoupled certificates must still be non-increasing
  // across every inter-mode jump (condition (c)); each check is a small SOS
  // feasibility program in the multipliers only. Consecutive checks share
  // one shape (PLL guards are congruent boxes), so each warm-starts from the
  // previous one.
  sdp::WarmStart jump_seed;
  for (std::size_t l = 0; l < system.jumps().size(); ++l) {
    const Jump& jump = system.jumps()[l];
    if (jump.from == jump.to) continue;
    const Polynomial v_to_after =
        compose_with_reset(result.certificates[jump.to], jump, nvars, nstates);
    Polynomial target = result.certificates[jump.from] - v_to_after;
    if (options_.jump_margin > 0.0) target -= options_.jump_margin * x_norm2;

    sos::SosProgram check(nvars);
    check.set_trace_regularization(options_.trace_regularization);
    check.set_sparsity(options_.solver);
    PolyLin expr(target);
    poly::MultiplierSparsity jump_csp = sos::multiplier_plan(nvars, options_.solver);
    jump_csp.couple(expr);
    subtract_multipliers(check, expr, jump.guard, options_.multiplier_degree,
                         "jumpcheck" + std::to_string(l), jump_csp);
    check.add_sos_constraint(expr, "jumpcheck" + std::to_string(l) + ".nonincrease");
    const bool reuse = options_.solver.warm_start;
    const sos::SolveResult solved =
        check.solve(options_.solver, reuse && !jump_seed.empty() ? &jump_seed : nullptr);
    if (reuse && !solved.warm.empty()) jump_seed = solved.warm;
    result.solver.absorb(solved);
    if (sos::solve_hard_failed(solved) || !sos::audit(check, solved).ok) {
      result.message = "decoupled certificates violate jump " + std::to_string(l) +
                       " non-increase";
      return result;
    }
  }

  result.audit.ok = result.audit.failed == 0;
  result.success = true;
  util::log_info("lyapunov: decoupled synthesis over ", num_modes, " modes accepted, ",
                 result.solver.str());
  return result;
}

}  // namespace soslock::core
