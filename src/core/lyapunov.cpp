#include "core/lyapunov.hpp"

#include <cassert>
#include <cmath>

#include "poly/basis.hpp"
#include "util/log.hpp"

namespace soslock::core {

using hybrid::HybridSystem;
using hybrid::Jump;
using hybrid::Mode;
using poly::Monomial;
using poly::Polynomial;
using poly::PolyLin;

std::vector<Monomial> state_monomials(std::size_t nvars, std::size_t nstates, unsigned max_deg,
                                      unsigned min_deg) {
  const std::vector<Monomial> base = poly::monomials_up_to(nstates, max_deg, min_deg);
  std::vector<Monomial> out;
  out.reserve(base.size());
  for (const Monomial& m : base) {
    Monomial big(nvars);
    for (std::size_t i = 0; i < nstates; ++i) big.set_exponent(i, m.exponent(i));
    out.push_back(big);
  }
  return out;
}

namespace {

/// Add S-procedure multipliers for every constraint of `set`, subtracting
/// sigma_k * g_k from `expr`. Multiplier Gram bases run over the listed
/// variable support.
void subtract_multipliers(sos::SosProgram& prog, PolyLin& expr,
                          const hybrid::SemialgebraicSet& set, unsigned multiplier_degree,
                          const std::string& label) {
  const std::size_t nvars = prog.nvars();
  for (std::size_t k = 0; k < set.constraints().size(); ++k) {
    const Polynomial& g = set.constraints()[k];
    const PolyLin sigma =
        prog.add_sos_poly(multiplier_degree, 0, label + ".sigma" + std::to_string(k));
    (void)nvars;
    expr -= sigma * g;
  }
}

}  // namespace

LyapunovResult LyapunovSynthesizer::synthesize(const HybridSystem& system) const {
  LyapunovResult result;
  const std::string invalid = system.validate();
  if (!invalid.empty()) {
    result.message = "invalid hybrid system: " + invalid;
    return result;
  }
  const std::size_t nstates = system.nstates();
  const std::size_t nvars = system.nvars();
  const unsigned deg_v = options_.certificate_degree;
  const unsigned deg_sigma = options_.multiplier_degree;
  if (deg_v < 2 || deg_v % 2 != 0) {
    result.message = "certificate degree must be even and >= 2";
    return result;
  }

  sos::SosProgram prog(nvars);
  prog.set_trace_regularization(options_.trace_regularization);

  // Unknown certificates: monomials of degree 2..deg_v in the states only
  // (V(0) = 0 by construction; no linear terms so the origin can be a local
  // minimum).
  const std::vector<Monomial> v_support = state_monomials(nvars, nstates, deg_v, 2);
  std::vector<PolyLin> v;
  const std::size_t num_modes = system.modes().size();
  if (options_.common_certificate) {
    const PolyLin shared = prog.add_poly(v_support, "V");
    v.assign(num_modes, shared);
  } else {
    for (std::size_t q = 0; q < num_modes; ++q)
      v.push_back(prog.add_poly(v_support, "V" + std::to_string(q)));
  }

  const Polynomial x_norm2 = poly::squared_norm(nvars, nstates);

  for (std::size_t q = 0; q < num_modes; ++q) {
    const Mode& mode = system.modes()[q];
    const std::string tag = "mode" + std::to_string(q);

    // (a) positivity: V_q - eps*|x|^2 - sum sigma*g ∈ Σ on C_q.
    {
      PolyLin expr = v[q] - PolyLin(options_.positivity_margin * x_norm2);
      subtract_multipliers(prog, expr, mode.domain, deg_sigma, tag + ".pos");
      prog.add_sos_constraint(expr, tag + ".positivity");
    }

    // (b) flow decrease: -V̇_q - [margin*|x|^2] - sum sigma*g - sum sigma*gu ∈ Σ.
    {
      PolyLin expr = -v[q].lie_derivative(mode.flow);
      if (options_.flow_decrease == FlowDecrease::Strict) {
        expr -= PolyLin(options_.strict_margin * x_norm2);
      }
      subtract_multipliers(prog, expr, mode.domain, deg_sigma, tag + ".flow");
      subtract_multipliers(prog, expr, system.parameter_set(), deg_sigma, tag + ".flowu");
      if (options_.exclude_ball_radius > 0.0) {
        // Decrease required only on {||x||^2 >= r^2}.
        const double r2 = options_.exclude_ball_radius * options_.exclude_ball_radius;
        hybrid::SemialgebraicSet outside(nvars);
        outside.add_constraint(x_norm2 - r2);
        subtract_multipliers(prog, expr, outside, deg_sigma, tag + ".ball");
      }
      prog.add_sos_constraint(expr, tag + ".decrease");
    }
  }

  // (c) jumps: V_to(R(x)) - V_from(x) <= -jump_margin on each guard.
  if (!options_.common_certificate) {
    for (std::size_t l = 0; l < system.jumps().size(); ++l) {
      const Jump& jump = system.jumps()[l];
      if (jump.from == jump.to) continue;
      PolyLin v_to_after;  // V_to composed with the reset map
      if (jump.is_identity_reset()) {
        v_to_after = v[jump.to];
      } else {
        // Compose each monomial of the unknown V_to with the numeric reset.
        PolyLin composed(nvars);
        std::vector<Polynomial> repl;
        repl.reserve(nvars);
        for (std::size_t i = 0; i < nstates; ++i) repl.push_back(jump.reset[i]);
        for (std::size_t i = nstates; i < nvars; ++i)
          repl.push_back(Polynomial::variable(nvars, i));
        for (const auto& [m, coeff] : v[jump.to].terms()) {
          const Polynomial composed_monomial =
              Polynomial::from_monomial(m, 1.0).substitute(repl);
          PolyLin scaled(composed_monomial);
          // scaled has numeric coefficients; multiply by the LinExpr coeff.
          for (const auto& [mm, cc] : composed_monomial.terms())
            composed.add_term(mm, cc * coeff);
          (void)scaled;
        }
        v_to_after = composed;
      }
      PolyLin expr = v[jump.from] - v_to_after;
      if (options_.jump_margin > 0.0) {
        expr -= PolyLin(options_.jump_margin * x_norm2);
      }
      const std::string tag = "jump" + std::to_string(l);
      subtract_multipliers(prog, expr, jump.guard, deg_sigma, tag);
      prog.add_sos_constraint(expr, tag + ".nonincrease");
    }
  }

  if (options_.maximize_region) {
    // Fatten the eventual level sets: minimize sum_q int_box V_q.
    const auto box = hybrid::estimate_state_box(system);
    poly::LinExpr objective;
    for (std::size_t q = 0; q < num_modes; ++q) {
      for (const auto& [m, coeff] : v[q].terms()) {
        // Normalized moment = average of the monomial over the box; keeps
        // the objective O(1) per coefficient (raw moments over wide voltage
        // boxes reach 1e5 and wreck the SDP conditioning).
        double moment = 1.0;
        for (std::size_t i = 0; i < nstates; ++i) {
          const auto [lo, hi] = box[i];
          const double p = static_cast<double>(m.exponent(i)) + 1.0;
          moment *= (std::pow(hi, p) - std::pow(lo, p)) / (p * std::max(hi - lo, 1e-12));
        }
        objective += moment * coeff;
      }
      if (options_.common_certificate) break;
    }
    prog.minimize(objective);
  }

  const sos::SolveResult solved = prog.solve(options_.ipm);
  result.status = solved.status;
  // Acceptance policy: reject certified-infeasible outcomes outright; for
  // anything else (including objective-stalled MaxIterations iterates) the
  // independent audit below is the verdict — a feasible-but-suboptimal
  // iterate still yields sound certificates.
  const bool hard_fail = solved.status == sdp::SolveStatus::PrimalInfeasible ||
                         solved.status == sdp::SolveStatus::DualInfeasible ||
                         solved.sdp.primal_residual > 1e-4;
  if (hard_fail) {
    result.message = "SOS program infeasible or unsolved (" + sdp::to_string(solved.status) + ")";
    return result;
  }

  result.audit = sos::audit(prog, solved);
  result.certificates.reserve(num_modes);
  for (std::size_t q = 0; q < num_modes; ++q) {
    result.certificates.push_back(solved.value(v[q]).pruned(1e-12));
  }
  result.success = result.audit.ok;
  if (!result.audit.ok) {
    result.message = "certificate audit failed: " +
                     (result.audit.failures.empty() ? "?" : result.audit.failures.front());
  }
  util::log_info("lyapunov: status=", sdp::to_string(result.status),
                 " audit_ok=", result.audit.ok, " worst_residual=", result.audit.worst_residual);
  return result;
}

}  // namespace soslock::core
