#include "sos/program.hpp"

#include <cassert>

#include "poly/sparsity.hpp"
#include "util/log.hpp"

namespace soslock::sos {

using poly::LinExpr;
using poly::Monomial;
using poly::PolyLin;

SosProgram::SosProgram(std::size_t nvars) : nvars_(nvars) {}

int SosProgram::new_free_var(const std::string& name) {
  const int id = static_cast<int>(var_is_free_.size());
  var_is_free_.push_back(true);
  var_free_index_.push_back(num_free_++);
  var_gram_ref_.push_back({});
  free_names_.push_back(name);
  return id;
}

int SosProgram::new_gram_var() {
  const int id = static_cast<int>(var_is_free_.size());
  var_is_free_.push_back(false);
  var_free_index_.push_back(0);
  var_gram_ref_.push_back({});  // filled by caller
  free_names_.emplace_back();
  return id;
}

LinExpr SosProgram::add_scalar(const std::string& name) {
  return LinExpr::variable(new_free_var(name));
}

PolyLin SosProgram::add_poly(const std::vector<Monomial>& support, const std::string& name) {
  PolyLin p(nvars_);
  for (const Monomial& m : support) {
    const int id = new_free_var(name.empty() ? "" : name + "[" + m.str() + "]");
    p.add_term(m, LinExpr::variable(id));
  }
  return p;
}

PolyLin SosProgram::add_poly(unsigned max_deg, unsigned min_deg, const std::string& name) {
  return add_poly(poly::monomials_up_to(nvars_, max_deg, min_deg), name);
}

PolyLin SosProgram::add_sos_poly(const std::vector<Monomial>& gram_basis,
                                 const std::string& name) {
  assert(!gram_basis.empty());
  GramBlock block;
  block.basis = gram_basis;
  block.label = name;
  const std::size_t n = gram_basis.size();
  const std::size_t block_index = gram_blocks_.size();

  PolyLin p(nvars_);
  block.entry_vars.reserve(n * (n + 1) / 2);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = r; c < n; ++c) {
      const int id = new_gram_var();
      var_gram_ref_[static_cast<std::size_t>(id)] = {block_index, r, c};
      block.entry_vars.push_back(id);
      const double mult = (r == c) ? 1.0 : 2.0;
      p.add_term(gram_basis[r] * gram_basis[c], LinExpr::variable(id, mult));
    }
  }
  gram_blocks_.push_back(std::move(block));
  return p;
}

PolyLin SosProgram::add_sos_poly(unsigned max_deg, unsigned min_deg, const std::string& name) {
  return add_sos_poly(poly::monomials_up_to(nvars_, max_deg / 2, (min_deg + 1) / 2), name);
}

void SosProgram::add_eq_zero(const PolyLin& p, const std::string& label) {
  for (const auto& [m, e] : p.terms()) {
    eq_rows_.push_back({m, e, label});
  }
}

void SosProgram::add_sos_constraint(const PolyLin& p, const std::string& label, bool prune) {
  const poly::SupportInfo info = poly::support_info(p);
  const poly::GramPrune prune_level =
      !prune ? poly::GramPrune::None
             : (info.support.empty() ? poly::GramPrune::Box : poly::GramPrune::Newton);
  std::vector<Monomial> basis = poly::gram_basis(nvars_, info, prune_level);

  // Correlative-sparsity split: one Gram block per csp clique, the sum of
  // the clique Gram polynomials matched against p. A trivial split (single
  // clique) degenerates to the dense path below, reusing the pruned basis
  // computed above (the Newton prune is the expensive part).
  if (sparsity_ != sdp::SparsityOptions::Off) {
    const poly::GramCliqueSplit split = poly::split_gram_basis(nvars_, info, basis);
    if (!split.trivial()) {
      const std::string base = label.empty() ? "sos" : label;
      std::vector<std::size_t> gram_indices;
      gram_indices.reserve(split.bases.size());
      PolyLin total(nvars_);
      for (std::size_t k = 0; k < split.bases.size(); ++k) {
        gram_indices.push_back(gram_blocks_.size());
        total += add_sos_poly(split.bases[k], base + ".clique" + std::to_string(k));
      }
      add_eq_zero(p - total, label);
      sos_records_.push_back({p, std::move(gram_indices), label});
      return;
    }
  }
  if (basis.empty()) {
    // p must be identically zero for the constraint to hold.
    util::log_warn("sos: empty Gram basis for constraint '", label, "'; forcing p == 0");
    add_eq_zero(p, label);
    return;
  }
  const std::size_t gram_index = gram_blocks_.size();
  const PolyLin gram_poly = add_sos_poly(basis, label.empty() ? "sos" : label);
  add_eq_zero(p - gram_poly, label);
  sos_records_.push_back({p, {gram_index}, label});
}

void SosProgram::add_linear_eq(const LinExpr& e, const std::string& label) {
  linear_rows_.push_back({e, true, label});
}

void SosProgram::add_linear_ge(const LinExpr& e, const std::string& label) {
  linear_rows_.push_back({e, false, label});
}

void SosProgram::minimize(const LinExpr& objective) {
  objective_ = objective;
  objective_is_max_ = false;
}

void SosProgram::maximize(const LinExpr& objective) {
  objective_ = -objective;
  objective_is_max_ = true;
}

}  // namespace soslock::sos
