#pragma once
// Sum-of-squares programming layer (the role YALMIP's SOS module played for
// the paper). Models unknown polynomials, SOS constraints and S-procedure
// multipliers, compiles them to one block SDP, and extracts certificates.
//
// Decision variables form one global index space. Each is either a *free*
// scalar (an unconstrained polynomial coefficient, an objective like a level
// value c, ...) or a *Gram entry* G_rc of some PSD block introduced by an SOS
// polynomial or an SOS constraint.
#include <string>
#include <vector>

#include "poly/basis.hpp"
#include "poly/poly_lin.hpp"
#include "poly/sparsity.hpp"
#include "sdp/problem.hpp"
#include "sdp/solver.hpp"

namespace soslock::sdp {
struct Lowering;
struct LoweringOptions;
class LoweringCache;
}  // namespace soslock::sdp

namespace soslock::sos {

/// Fresh csp multiplier plan for a certifier program — the single policy
/// point deciding whether a SolverConfig's sparsity mode restricts
/// S-procedure multiplier bases. Callers couple() their data polynomials
/// before drawing the first multiplier basis (see poly::MultiplierSparsity).
inline poly::MultiplierSparsity multiplier_plan(std::size_t nvars,
                                                const sdp::SolverConfig& config) {
  return poly::MultiplierSparsity(nvars, config.sparsity != sdp::SparsityOptions::Off);
}

/// A PSD Gram block: the polynomial it represents is basis' * G * basis.
struct GramBlock {
  std::vector<poly::Monomial> basis;
  std::vector<int> entry_vars;  // decision ids for entries (r<=c, row-major upper)
  std::string label;
};

struct SolveResult;

class SosProgram {
 public:
  /// `nvars` = number of polynomial indeterminates (states + parameters).
  explicit SosProgram(std::size_t nvars);

  std::size_t nvars() const { return nvars_; }

  // --- Decision variables -------------------------------------------------

  /// New free scalar decision variable; returns it as a LinExpr.
  poly::LinExpr add_scalar(const std::string& name = "");

  /// Unknown polynomial with the given monomial support (all coefficients
  /// free scalars).
  poly::PolyLin add_poly(const std::vector<poly::Monomial>& support,
                         const std::string& name = "");
  /// Unknown polynomial with full support of total degree in [min_deg, max_deg].
  poly::PolyLin add_poly(unsigned max_deg, unsigned min_deg = 0,
                         const std::string& name = "");

  /// Unknown SOS polynomial: creates a Gram PSD block over `gram_basis` and
  /// returns basis' G basis as a PolyLin (coefficients linear in Gram vars).
  poly::PolyLin add_sos_poly(const std::vector<poly::Monomial>& gram_basis,
                             const std::string& name = "");
  /// Gram basis = all monomials of degree <= max_deg/2 (>= min_deg/2).
  poly::PolyLin add_sos_poly(unsigned max_deg, unsigned min_deg = 0,
                             const std::string& name = "");

  // --- Constraints ----------------------------------------------------------

  /// Require p(x) == 0 identically (coefficient matching).
  void add_eq_zero(const poly::PolyLin& p, const std::string& label = "");
  /// Require p ∈ Σ[x]: introduces a Gram block (basis pruned from the support
  /// of p via the Newton-polytope box bound when `prune`).
  void add_sos_constraint(const poly::PolyLin& p, const std::string& label = "",
                          bool prune = true);
  /// Scalar affine equality e == 0.
  void add_linear_eq(const poly::LinExpr& e, const std::string& label = "");
  /// Scalar affine inequality e >= 0 (1x1 PSD slack).
  void add_linear_ge(const poly::LinExpr& e, const std::string& label = "");

  // --- Objective ------------------------------------------------------------

  void minimize(const poly::LinExpr& objective);
  void maximize(const poly::LinExpr& objective);

  /// Add w * trace(G) to the minimization objective for every Gram block;
  /// regularizes pure feasibility problems (keeps Gram matrices small and
  /// well inside the cone).
  void set_trace_regularization(double weight) { trace_reg_ = weight; }

  /// Sparsity exploitation. Must be set *before* SOS constraints are added:
  /// Correlative (and Chordal) split each constraint's Gram basis along the
  /// csp-graph cliques at add_sos_constraint time; Chordal additionally runs
  /// the clique-decomposition passes of the sdp/lowering pipeline inside
  /// solve() (native DecomposedCone lowering by default, overlap rows under
  /// ChordalOptions::at_seam). Warm blobs live in the pre-lowering space and
  /// remap per clique, so they survive pass-parameter changes; modes that
  /// compile different Gram blocks (Off vs Correlative) still separate
  /// naturally through the compiled structure fingerprint. The core
  /// certifiers forward options.solver.sparsity.
  void set_sparsity(sdp::SparsityOptions sparsity) { sparsity_ = sparsity; }
  sdp::SparsityOptions sparsity() const { return sparsity_; }
  /// Tuning for the Chordal conversion pass (block-size threshold etc).
  void set_chordal_options(const sdp::ChordalOptions& options) { chordal_ = options; }
  /// Convenience for the core certifiers: adopt the sparsity fields of the
  /// shared solver config (call before adding SOS constraints). When the
  /// config selects the async clique-parallel ADMM driver, this also
  /// requests the lowering pipeline's subtree-partition pass for its worker
  /// count, so the worker map is computed once, provenance-recorded and
  /// cached with the structure instead of rebuilt by the driver per solve.
  void set_sparsity(const sdp::SolverConfig& config);
  /// Directly request (workers >= 1) or drop (0, the default) the subtree-
  /// partition pass of the lowering pipeline.
  void set_partition_workers(std::size_t workers) { partition_workers_ = workers; }
  std::size_t partition_workers() const { return partition_workers_; }

  // --- Solve ----------------------------------------------------------------

  /// Compile and solve with the backend selected by `config` (registry name
  /// "ipm" / "admm" / "auto"; see sdp/solver.hpp). `warm` optionally replays
  /// a previous solve's iterate (SolveResult::warm): it is restored when its
  /// structure fingerprint matches the compiled program and ignored
  /// otherwise, so callers can pass the blob unconditionally across retry
  /// loops whose program shape may drift.
  SolveResult solve(const sdp::SolverConfig& config = {},
                    const sdp::WarmStart* warm = nullptr) const;
  /// Compile and solve with a caller-owned backend and runtime context
  /// (wall-clock budget, cancellation, per-iteration telemetry,
  /// context.warm_start — fingerprint-checked here like `warm` above).
  SolveResult solve(const sdp::SolverBackend& backend, sdp::SolveContext& context) const;
  /// Same, but lowering through the caller's sdp::LoweringCache: when this
  /// compile is structurally identical to the cached one, the in-place
  /// coefficient-update pass replaces the full analyze→decompose→lower
  /// pipeline (the sweep hot path — see src/sweep/). One cache per thread;
  /// it must outlive the returned Lowering's use, i.e. the call.
  SolveResult solve(const sdp::SolverBackend& backend, sdp::SolveContext& context,
                    sdp::LoweringCache& cache) const;

  /// Compile to the underlying SDP (exposed for tests and benchmarks).
  sdp::Problem compile() const;

  std::size_t num_decision_vars() const { return var_is_free_.size(); }
  const std::vector<GramBlock>& gram_blocks() const { return gram_blocks_; }
  std::size_t num_constraints() const { return eq_rows_.size() + linear_rows_.size(); }

  /// Record of one `p ∈ Σ` constraint, kept so solved certificates can be
  /// independently re-audited (see sos/checker.hpp). With sparsity enabled a
  /// constraint owns one Gram block per csp clique; the audit recombines
  /// them into one dense certificate (sos::recombine_cliques).
  struct SosConstraintRecord {
    poly::PolyLin target;       // the constrained polynomial (decision-linear)
    std::vector<std::size_t> gram_indices;  // Gram block(s) allocated for it
    std::string label;
  };
  const std::vector<SosConstraintRecord>& sos_records() const { return sos_records_; }

 private:
  friend struct SolveResult;

  int new_free_var(const std::string& name);
  int new_gram_var();
  /// The pipeline options this program's sparsity settings imply.
  sdp::LoweringOptions lowering_options() const;
  /// Shared back half of every solve(): warm remap, backend call, recovery,
  /// certificate extraction — everything downstream of the lowering.
  SolveResult solve_lowered(const sdp::SolverBackend& backend, sdp::SolveContext& context,
                            const sdp::Lowering& lowering) const;
  struct GramRef;
  static void prob_add_gram_coeff(sdp::Row& row, const GramRef& g, double coeff);

  std::size_t nvars_;
  // Decision variable table: free vars get an SDP free index, gram vars map
  // to (block, r, c).
  std::vector<bool> var_is_free_;
  std::vector<std::size_t> var_free_index_;            // valid when free
  struct GramRef {
    std::size_t block = 0, r = 0, c = 0;
  };
  std::vector<GramRef> var_gram_ref_;                  // valid when !free
  std::vector<std::string> free_names_;
  std::size_t num_free_ = 0;

  std::vector<GramBlock> gram_blocks_;

  struct EqRow {
    poly::Monomial monomial;     // provenance
    poly::LinExpr expr;          // expr == 0
    std::string label;
  };
  std::vector<EqRow> eq_rows_;
  struct LinRow {
    poly::LinExpr expr;
    bool is_equality;            // else: expr >= 0
    std::string label;
  };
  std::vector<LinRow> linear_rows_;

  poly::LinExpr objective_;      // always stored in minimization form
  bool objective_is_max_ = false;
  double trace_reg_ = 0.0;
  sdp::SparsityOptions sparsity_ = sdp::SparsityOptions::Off;
  sdp::ChordalOptions chordal_;
  std::size_t partition_workers_ = 0;  // 0 = no partition pass
  std::vector<SosConstraintRecord> sos_records_;
};

/// A Gram certificate extracted from a solved program.
struct GramCertificate {
  std::vector<poly::Monomial> basis;
  linalg::Matrix gram;           // PSD up to solver tolerance
  std::string label;
  /// The polynomial basis' * G * basis.
  poly::Polynomial polynomial(std::size_t nvars) const;
};

struct SolveResult {
  sdp::SolveStatus status = sdp::SolveStatus::NumericalProblem;
  /// True when the iterate satisfies all constraints to working tolerance;
  /// the independent CertificateChecker gives the final soundness verdict.
  bool feasible = false;
  linalg::Vector decision_values;          // indexed by decision var id
  std::vector<GramCertificate> grams;      // one per Gram block, program order
  double objective = 0.0;                  // value of the user objective
  sdp::Solution sdp;                       // raw solver output
                                           // (sdp.backend / sdp.solve_seconds
                                           // carry the per-solve telemetry)
  /// Solver iterate + structure fingerprint for warm-starting the next
  /// structurally identical solve. Populated for every outcome that carries
  /// state — including Interrupted and stalled MaxIterations iterates, so
  /// retry loops never re-derive what the aborted solve already knew. The
  /// blob lives in the base (pre-lowering, unequilibrated) space: the next
  /// solve re-lowers it through sdp::remap_warm_start, so it survives
  /// lowering-parameter changes (min_block_size, at_seam, ...).
  sdp::WarmStart warm;

  double value(const poly::LinExpr& e) const { return e.eval(decision_values); }
  poly::Polynomial value(const poly::PolyLin& p) const {
    return p.eval_decision(decision_values);
  }
};

/// Shared acceptance policy for pipeline verification steps: certified
/// infeasibility or a residual blowup rejects the iterate outright; anything
/// else (objective-stalled MaxIterations, budget-interrupted) goes to the
/// independent certificate audit, which gives the soundness verdict.
bool solve_hard_failed(const SolveResult& result);

/// Aggregated solver telemetry across the SDP solves behind one verification
/// step; surfaced in PipelineReport timing rows so regenerated Table-2
/// numbers record which backend produced them.
struct SolveStats {
  std::string backend;       // "ipm", "admm", or "mixed"
  int solves = 0;
  int iterations = 0;        // summed over solves
  double seconds = 0.0;      // summed wall clock inside backends
  std::size_t max_cone = 0;  // largest PSD cone any backend worked on
  /// Per-phase breakdown (schur / factor / eig / recover inside the
  /// backends, plus the lowering pipeline's convert / complete) summed over
  /// solves; shows *where* the iterations spend their time. The backend
  /// phases total slightly below `seconds` (residuals/bookkeeping are
  /// untimed); convert/complete fall outside `seconds` entirely.
  sdp::PhaseTimes phase;
  /// Async clique-parallel ADMM telemetry, aggregated over the solves that
  /// ran that driver (all zero otherwise): how many did, the largest
  /// mailbox staleness any of them observed, and their consensus rounds.
  int async_solves = 0;
  int max_staleness_seen = 0;
  long consensus_rounds = 0;
  /// Resilience telemetry: recovery steps (retries, backend fallbacks, async
  /// sync-fallbacks) the solves behind this step needed. Zero on a healthy
  /// run; nonzero flags that a verdict survived a solver failure.
  int recoveries = 0;
  /// Mixed-precision IPM telemetry, aggregated over the solves that ran with
  /// IpmOptions::mixed_precision (all zero otherwise): how many did, the
  /// FP64 refinement steps their FP32-factored solves needed in total, the
  /// worst single solve's step count, and how many solves hit the in-solve
  /// FP64 fallback.
  int mixed_precision_solves = 0;
  long refinement_steps = 0;
  int max_refinement_steps = 0;
  int fp32_fallbacks = 0;

  void absorb(const SolveResult& result);
  void merge(const SolveStats& other);
  /// e.g. "backend=ipm solves=3 iters=112 (1.24s)"; empty when no solves.
  std::string str() const;
};

}  // namespace soslock::sos
