// Certificate reconstruction helpers for solved SOS programs.
#include "sos/program.hpp"

namespace soslock::sos {

poly::Polynomial GramCertificate::polynomial(std::size_t nvars) const {
  poly::Polynomial p(nvars);
  const std::size_t n = basis.size();
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      if (gram.rows() <= r || gram.cols() <= c) continue;
      const double v = gram(r, c);
      if (v != 0.0) p.add_term(basis[r] * basis[c], v);
    }
  }
  return p;
}

}  // namespace soslock::sos
