#include "sos/batch.hpp"

#include <algorithm>

namespace soslock::sos {

sdp::SolverConfig BatchSolver::effective_config(const sdp::SolverConfig& config,
                                                std::size_t batch_size) const {
  sdp::SolverConfig cfg = config;
  const std::size_t workers = std::max<std::size_t>(1, std::min(threads(), batch_size));
  const std::size_t want =
      cfg.threads == 0 ? util::ThreadPool::hardware_threads() : cfg.threads;
  cfg.threads = std::max<std::size_t>(1, want / workers);
  return cfg;
}

std::vector<SolveResult> BatchSolver::solve_all(
    const std::vector<const SosProgram*>& programs, const sdp::SolverConfig& config) const {
  std::vector<SolveResult> results(programs.size());
  const sdp::SolverConfig cfg = effective_config(config, programs.size());
  run_all(programs.size(), [&](std::size_t i) { results[i] = programs[i]->solve(cfg); });
  return results;
}

}  // namespace soslock::sos
