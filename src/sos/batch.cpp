#include "sos/batch.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace soslock::sos {

BatchSolver::BatchSolver(std::size_t threads) : threads_(threads) {
  if (threads_ == 0) {
    threads_ = std::thread::hardware_concurrency();
    if (threads_ == 0) threads_ = 1;
  }
}

void BatchSolver::run_all(std::size_t count,
                          const std::function<void(std::size_t)>& task) const {
  if (count == 0) return;
  const std::size_t workers = std::min(threads_, count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        task(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t t = 0; t + 1 < workers; ++t) pool.emplace_back(worker);
  worker();  // the calling thread participates
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::size_t BatchSolver::run_all_until_failure(
    std::size_t count, const std::function<bool(std::size_t)>& task) const {
  std::atomic<bool> abort_rest{false};
  std::atomic<std::size_t> first_failed{count};
  run_all(count, [&](std::size_t i) {
    if (abort_rest.load(std::memory_order_relaxed)) return;
    if (task(i)) return;
    abort_rest.store(true, std::memory_order_relaxed);
    std::size_t prev = first_failed.load();
    while (i < prev && !first_failed.compare_exchange_weak(prev, i)) {
    }
  });
  return first_failed.load();
}

std::vector<SolveResult> BatchSolver::solve_all(
    const std::vector<const SosProgram*>& programs, const sdp::SolverConfig& config) const {
  std::vector<SolveResult> results(programs.size());
  run_all(programs.size(), [&](std::size_t i) { results[i] = programs[i]->solve(config); });
  return results;
}

}  // namespace soslock::sos
