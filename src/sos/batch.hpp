#pragma once
// Batched parallel SOS solving. Per-mode SOS programs in the verification
// pipeline (level-curve maximisation, escape certificates, decoupled
// Lyapunov synthesis) are independent SDPs, so they can be dispatched onto a
// thread pool instead of being solved one after another. All SDP data is
// built per task and the backends are stateless, so the only shared state is
// the result slots (one per task, disjoint).
//
// The pool itself is util::ThreadPool (shared with the SDP backends'
// intra-solve parallelism); BatchSolver is a thin SOS-aware wrapper that
// also rebalances SolverConfig::threads across its workers so batched
// solves on multi-threaded backends do not oversubscribe the machine.
#include <cstddef>
#include <functional>
#include <vector>

#include "sos/program.hpp"
#include "util/thread_pool.hpp"

namespace soslock::sos {

class BatchSolver {
 public:
  /// `threads` = worker cap; 0 uses the hardware count.
  explicit BatchSolver(std::size_t threads = 0) : pool_(threads) {}

  /// Worker cap after resolving 0 to the hardware count.
  std::size_t threads() const { return pool_.threads(); }

  /// The underlying fork-join pool.
  const util::ThreadPool& pool() const { return pool_; }

  /// Run `count` independent tasks, task(i) for i in [0, count); blocks until
  /// all complete. Tasks run on up to threads() workers (inline when the cap
  /// or count is 1). The first task exception, if any, is rethrown here.
  void run_all(std::size_t count, const std::function<void(std::size_t)>& task) const {
    pool_.run_all(count, task);
  }

  /// run_all with early abort: a task returning false skips every task that
  /// has not yet started (in-flight tasks complete), keeping failure paths as
  /// cheap as a sequential early exit. Returns the lowest failed index, or
  /// `count` when every executed task succeeded.
  std::size_t run_all_until_failure(std::size_t count,
                                    const std::function<bool(std::size_t)>& task) const {
    return pool_.run_all_until_failure(count, task);
  }

  /// Solve independent programs concurrently; results in input order. Each
  /// solve gets its own backend instance built from `config`, with
  /// config.threads divided across the batch workers so nested backend
  /// parallelism never oversubscribes (see effective_config).
  std::vector<SolveResult> solve_all(const std::vector<const SosProgram*>& programs,
                                     const sdp::SolverConfig& config = {}) const;

  /// The per-solve config solve_all hands each worker: SolverConfig::threads
  /// (0 = hardware) divided by the number of concurrent batch workers,
  /// floored at 1. Exposed for tests.
  sdp::SolverConfig effective_config(const sdp::SolverConfig& config,
                                     std::size_t batch_size) const;

 private:
  util::ThreadPool pool_;
};

}  // namespace soslock::sos
