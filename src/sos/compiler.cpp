// Compilation of an SosProgram to the block SDP of sdp/problem.hpp, and the
// end-to-end solve() that extracts certificates from the solver iterate.
#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <memory>

#include "sdp/lowering.hpp"
#include "sos/program.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace soslock::sos {

using linalg::Matrix;
using poly::LinExpr;

sdp::Problem SosProgram::compile() const {
  sdp::Problem prob;

  // Gram blocks come first so gram block g == SDP block g.
  for (const GramBlock& g : gram_blocks_) prob.add_block(g.basis.size());

  // Free variables in their registration order.
  for (std::size_t v = 0; v < var_is_free_.size(); ++v) {
    if (var_is_free_[v]) {
      const std::size_t idx = prob.add_free(0.0);
      assert(idx == var_free_index_[v]);
      (void)idx;
    }
  }

  auto add_expr_to_row = [this](const LinExpr& expr, sdp::Row& row) {
    row.rhs = -expr.constant();
    for (const auto& [var, coeff] : expr.coeffs()) {
      const auto v = static_cast<std::size_t>(var);
      assert(v < var_is_free_.size());
      if (var_is_free_[v]) {
        row.free_coeffs[var_free_index_[v]] += coeff;
      } else {
        const GramRef& g = var_gram_ref_[v];
        // The decision variable is the matrix entry G_rc (mirrored); in
        // <A, X> an off-diagonal coefficient pair contributes twice.
        prob_add_gram_coeff(row, g, coeff);
      }
    }
  };

  // Polynomial coefficient-matching rows.
  for (const EqRow& er : eq_rows_) {
    sdp::Row row;
    row.label = er.label.empty() ? er.monomial.str() : er.label + ":" + er.monomial.str();
    add_expr_to_row(er.expr, row);
    prob.add_row(std::move(row));
  }

  // Scalar linear rows; inequalities get a 1x1 slack block.
  for (const LinRow& lr : linear_rows_) {
    sdp::Row row;
    row.label = lr.label;
    add_expr_to_row(lr.expr, row);
    if (!lr.is_equality) {
      const std::size_t slack = prob.add_block(1);
      sdp::SparseSym s;
      s.add(0, 0, -1.0);
      row.blocks[slack] = std::move(s);
    }
    prob.add_row(std::move(row));
  }

  // Objective: free coefficients and Gram-entry coefficients.
  {
    std::vector<Matrix> block_obj;
    block_obj.reserve(gram_blocks_.size());
    for (const GramBlock& g : gram_blocks_) {
      Matrix c(g.basis.size(), g.basis.size());
      if (trace_reg_ > 0.0) {
        for (std::size_t i = 0; i < g.basis.size(); ++i) c(i, i) = trace_reg_;
      }
      block_obj.push_back(std::move(c));
    }
    for (const auto& [var, coeff] : objective_.coeffs()) {
      const auto v = static_cast<std::size_t>(var);
      if (var_is_free_[v]) {
        prob.set_free_objective(var_free_index_[v], coeff);
      } else {
        const GramRef& g = var_gram_ref_[v];
        if (g.r == g.c) {
          block_obj[g.block](g.r, g.c) += coeff;
        } else {
          block_obj[g.block](g.r, g.c) += 0.5 * coeff;
          block_obj[g.block](g.c, g.r) += 0.5 * coeff;
        }
      }
    }
    for (std::size_t j = 0; j < gram_blocks_.size(); ++j)
      prob.set_block_objective(j, std::move(block_obj[j]));
  }

  return prob;
}

void SosProgram::prob_add_gram_coeff(sdp::Row& row, const GramRef& g, double coeff) {
  sdp::SparseSym& a = row.blocks[g.block];
  if (g.r == g.c) {
    a.add(g.r, g.c, coeff);
  } else {
    a.add(g.r, g.c, 0.5 * coeff);
  }
}

SolveResult SosProgram::solve(const sdp::SolverConfig& config,
                              const sdp::WarmStart* warm) const {
  const std::unique_ptr<sdp::SolverBackend> backend = sdp::make_solver(config);
  sdp::SolveContext context;
  context.time_budget_seconds = config.time_budget_seconds;
  context.warm_start = warm;
  return solve(*backend, context);
}

SolveResult SosProgram::solve(const sdp::SolverBackend& backend,
                              sdp::SolveContext& context) const {
  // Staged lowering pipeline (sdp/lowering): support/csp analysis happened
  // at constraint-add time (the correlative Gram split); the SDP-level
  // passes — clique decomposition, block lowering (native DecomposedCone
  // descriptors by default, overlap rows under ChordalOptions::at_seam),
  // and row equilibration — run here with per-pass provenance.
  const sdp::Lowering lowering = sdp::lower(compile(), lowering_options());
  return solve_lowered(backend, context, lowering);
}

SolveResult SosProgram::solve(const sdp::SolverBackend& backend, sdp::SolveContext& context,
                              sdp::LoweringCache& cache) const {
  // Same pipeline, but through the caller's cache: a repeat of the cached
  // structure takes the in-place coefficient-update pass instead of
  // re-running analyze → decompose → lower (sweep hot path).
  const sdp::Lowering& lowering = cache.lower(compile(), lowering_options());
  return solve_lowered(backend, context, lowering);
}

void SosProgram::set_sparsity(const sdp::SolverConfig& config) {
  sparsity_ = config.sparsity;
  chordal_ = config.chordal;
  partition_workers_ =
      config.admm.async
          ? (config.admm.workers != 0 ? config.admm.workers
                                      : util::ThreadPool::hardware_threads())
          : 0;
}

sdp::LoweringOptions SosProgram::lowering_options() const {
  sdp::LoweringOptions options;
  options.sparsity = sparsity_;
  options.chordal = chordal_;
  options.partition_workers = partition_workers_;
  return options;
}

SolveResult SosProgram::solve_lowered(const sdp::SolverBackend& backend,
                                      sdp::SolveContext& context,
                                      const sdp::Lowering& lowering) const {
  const sdp::Problem& prob = lowering.problem;
  util::log_info("sos: solving ", prob.stats());

  // Warm blobs live in the base (pre-lowering) space: a blob applies when
  // its fingerprint matches the compiled structure, whatever the lowering
  // parameters of either solve were, and remap_warm_start carries it into
  // this lowering (per-clique extraction, equilibrated row scaling) with a
  // drift guard on every clique's canonical entry map. The caller's pointer
  // is restored even if the backend throws — lowered_warm dies with this
  // frame, and the caller-owned context must never keep a pointer to it.
  const sdp::WarmStart* caller_warm = context.warm_start;
  sdp::WarmStart lowered_warm;
  context.warm_start = nullptr;
  if (caller_warm != nullptr && !caller_warm->empty() &&
      caller_warm->fingerprint == lowering.base_fingerprint) {
    lowered_warm = sdp::remap_warm_start(*caller_warm, lowering);
    if (!lowered_warm.empty()) context.warm_start = &lowered_warm;
  }
  sdp::Solution sol;
  try {
    sol = backend.solve(prob, context);
  } catch (...) {
    context.warm_start = caller_warm;
    throw;
  }
  context.warm_start = caller_warm;
  // Cone-size telemetry: the largest PSD block the backend worked on (the
  // lowered problem's, when the decomposition pass ran).
  for (std::size_t j = 0; j < prob.num_blocks(); ++j)
    sol.max_cone = std::max(sol.max_cone, prob.block_size(j));
  // Divergence test for the warm-start export below, taken in the
  // equilibrated space the solver worked in (the unscaled duals can be
  // legitimately huge when a row scale is tiny).
  const double y_scale = sol.y.empty() ? 0.0 : linalg::norm_inf(sol.y);
  // Back to the original compiled shape: un-equilibrated duals, completed
  // primal cones (stamps PhaseTimes convert/complete so the lowering round
  // trip shows up in the telemetry).
  sol = sdp::recover(std::move(sol), lowering);

  // Export the recovered iterate as a base-space blob: the next
  // structurally identical compile accepts it even if its pass parameters
  // (min_block_size, at_seam, sparsity level at equal compiled blocks)
  // differ — remap_warm_start re-lowers it per clique.
  sdp::WarmStart warm_blob;
  if (std::isfinite(y_scale) && y_scale < 1e8) {
    warm_blob = sdp::export_warm_start(sol, lowering);
  }

  SolveResult result;
  result.status = sol.status;
  result.warm = std::move(warm_blob);
  result.sdp = std::move(sol);  // the iterate is read from result.sdp below
  // "feasible" = the iterate satisfies the constraints to working tolerance.
  // Callers that extract certificates must still pass them through
  // sos::audit, which is the actual soundness verdict; a stalled-but-valid
  // iterate (small residual, mediocre gap) is acceptable there, merely
  // suboptimal in the objective.
  result.feasible =
      result.status == sdp::SolveStatus::Optimal ||
      ((result.status == sdp::SolveStatus::MaxIterations ||
        result.status == sdp::SolveStatus::Interrupted) &&
       result.sdp.primal_residual < 1e-5 && result.sdp.gap < 5e-3 &&
       result.sdp.dual_residual < 1e-4);

  // Assemble the full decision-variable vector.
  result.decision_values.assign(var_is_free_.size(), 0.0);
  for (std::size_t v = 0; v < var_is_free_.size(); ++v) {
    if (var_is_free_[v]) {
      result.decision_values[v] =
          result.sdp.w.empty() ? 0.0 : result.sdp.w[var_free_index_[v]];
    } else {
      const GramRef& g = var_gram_ref_[v];
      if (g.block < result.sdp.x.size())
        result.decision_values[v] = result.sdp.x[g.block](g.r, g.c);
    }
  }

  // Extract Gram certificates.
  result.grams.reserve(gram_blocks_.size());
  for (std::size_t j = 0; j < gram_blocks_.size(); ++j) {
    GramCertificate cert;
    cert.basis = gram_blocks_[j].basis;
    cert.label = gram_blocks_[j].label;
    if (j < result.sdp.x.size()) cert.gram = result.sdp.x[j];
    result.grams.push_back(std::move(cert));
  }

  const double min_value = objective_.eval(result.decision_values);
  result.objective = objective_is_max_ ? -min_value : min_value;
  // result.warm was exported above (post-recovery, base space) for the next
  // structurally identical compile, including from Interrupted/stalled best
  // iterates (what a retry loop resumes from) and from
  // infeasible-classified solves (whose iterate is the natural seed for the
  // next attempt in a sequence of infeasible checks, e.g. the
  // not-yet-immersed inclusion chain). The exception is a *divergent*
  // iterate — replaying a divergence ray poisons whatever solve it seeds —
  // detected by magnitude in the equilibrated space. The 1e8 cutoff is a
  // fixed heuristic chosen above the largest legitimate stalled duals seen
  // in the pipeline (~1e7 on the advection programs); it is deliberately not
  // tied to any backend option, since this layer cannot see which backend
  // (or threshold) produced the iterate.
  return result;
}

bool solve_hard_failed(const SolveResult& result) {
  return result.status == sdp::SolveStatus::PrimalInfeasible ||
         result.status == sdp::SolveStatus::DualInfeasible ||
         result.sdp.primal_residual > 1e-4;
}

void SolveStats::absorb(const SolveResult& result) {
  if (backend.empty()) {
    backend = result.sdp.backend;
  } else if (backend != result.sdp.backend && !result.sdp.backend.empty()) {
    backend = "mixed";
  }
  ++solves;
  iterations += result.sdp.iterations;
  seconds += result.sdp.solve_seconds;
  max_cone = std::max(max_cone, result.sdp.max_cone);
  phase.merge(result.sdp.phase);
  if (!result.sdp.worker_iterations.empty()) {
    ++async_solves;
    max_staleness_seen = std::max(max_staleness_seen, result.sdp.max_staleness_seen);
    consensus_rounds += result.sdp.consensus_rounds;
  }
  recoveries += static_cast<int>(result.sdp.recoveries.size());
  if (result.sdp.mixed.enabled) {
    ++mixed_precision_solves;
    refinement_steps += result.sdp.mixed.refinement_steps;
    max_refinement_steps =
        std::max(max_refinement_steps, result.sdp.mixed.max_refinement_steps);
    fp32_fallbacks += result.sdp.mixed.fp64_fallbacks;
  }
}

void SolveStats::merge(const SolveStats& other) {
  if (other.solves == 0) return;
  if (backend.empty()) {
    backend = other.backend;
  } else if (backend != other.backend) {
    backend = "mixed";
  }
  solves += other.solves;
  iterations += other.iterations;
  seconds += other.seconds;
  max_cone = std::max(max_cone, other.max_cone);
  phase.merge(other.phase);
  async_solves += other.async_solves;
  max_staleness_seen = std::max(max_staleness_seen, other.max_staleness_seen);
  consensus_rounds += other.consensus_rounds;
  recoveries += other.recoveries;
  mixed_precision_solves += other.mixed_precision_solves;
  refinement_steps += other.refinement_steps;
  max_refinement_steps = std::max(max_refinement_steps, other.max_refinement_steps);
  fp32_fallbacks += other.fp32_fallbacks;
}

std::string SolveStats::str() const {
  if (solves == 0) return {};
  char buf[144];
  int len = std::snprintf(buf, sizeof(buf), "backend=%s solves=%d iters=%d (%.2fs)",
                          backend.empty() ? "?" : backend.c_str(), solves, iterations,
                          seconds);
  if (async_solves > 0 && len > 0 && static_cast<std::size_t>(len) < sizeof(buf)) {
    len += std::snprintf(buf + len, sizeof(buf) - static_cast<std::size_t>(len),
                         " async=%d(stale<=%d)", async_solves, max_staleness_seen);
  }
  if (mixed_precision_solves > 0 && len > 0 &&
      static_cast<std::size_t>(len) < sizeof(buf)) {
    len += std::snprintf(buf + len, sizeof(buf) - static_cast<std::size_t>(len),
                         " fp32=%d(refine<=%d)", mixed_precision_solves,
                         max_refinement_steps);
  }
  if (recoveries > 0 && len > 0 && static_cast<std::size_t>(len) < sizeof(buf)) {
    std::snprintf(buf + len, sizeof(buf) - static_cast<std::size_t>(len),
                  " recoveries=%d", recoveries);
  }
  return buf;
}

}  // namespace soslock::sos
