#include "sos/checker.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/eigen_sym.hpp"
#include "poly/basis.hpp"
#include "util/log.hpp"

namespace soslock::sos {

using linalg::Matrix;
using poly::Polynomial;

CheckReport check_gram_identity(const Polynomial& p, const GramCertificate& cert,
                                const CheckOptions& options) {
  CheckReport report;
  if (cert.gram.rows() != cert.basis.size()) {
    report.detail = "gram size does not match basis";
    return report;
  }
  // (i) identity residual
  const Polynomial reconstructed = cert.polynomial(p.nvars());
  const Polynomial residual = p - reconstructed;
  const double scale = std::max(1.0, p.coeff_norm_inf());
  report.residual = residual.coeff_norm_inf() / scale;

  // (ii) PSD margin, relative to the Gram scale
  if (cert.gram.rows() == 0) {
    report.min_eigenvalue = 0.0;
  } else {
    report.min_eigenvalue = linalg::min_eigenvalue(cert.gram);
  }
  double trace = 0.0;
  for (std::size_t i = 0; i < cert.gram.rows(); ++i) trace += cert.gram(i, i);
  const double gram_scale = std::max(1.0, trace / std::max<std::size_t>(1, cert.gram.rows()));

  const bool identity_ok = report.residual <= options.residual_tol;
  const bool psd_ok = report.min_eigenvalue >= -options.psd_tol * gram_scale;
  report.ok = identity_ok && psd_ok;
  if (!identity_ok) report.detail += "identity residual too large; ";
  if (!psd_ok) report.detail += "gram not PSD within tolerance; ";
  return report;
}

GramCertificate recombine_cliques(const std::vector<GramCertificate>& parts) {
  GramCertificate out;
  if (parts.empty()) return out;
  out.label = parts.front().label;
  const std::string::size_type cut = out.label.rfind(".clique");
  if (cut != std::string::npos) out.label.resize(cut);
  for (const GramCertificate& part : parts) {
    out.basis.insert(out.basis.end(), part.basis.begin(), part.basis.end());
  }
  std::sort(out.basis.begin(), out.basis.end());
  out.basis.erase(std::unique(out.basis.begin(), out.basis.end()), out.basis.end());
  for (const GramCertificate& part : parts) {
    if (part.gram.rows() != part.basis.size()) return out;  // empty gram: unverifiable
  }
  out.gram = linalg::Matrix(out.basis.size(), out.basis.size());
  for (const GramCertificate& part : parts) {
    std::vector<std::size_t> pos(part.basis.size());
    for (std::size_t i = 0; i < part.basis.size(); ++i) {
      pos[i] = static_cast<std::size_t>(
          std::lower_bound(out.basis.begin(), out.basis.end(), part.basis[i]) -
          out.basis.begin());
    }
    for (std::size_t r = 0; r < part.basis.size(); ++r)
      for (std::size_t c = 0; c < part.basis.size(); ++c)
        out.gram(pos[r], pos[c]) += part.gram(r, c);
  }
  return out;
}

bool is_sos_numeric(const Polynomial& p, double tolerance) {
  if (p.is_zero()) return true;
  SosProgram prog(p.nvars());
  prog.set_trace_regularization(1e-8);
  prog.add_sos_constraint(p, "is_sos");
  sdp::SolverConfig config;
  config.backend = "ipm";  // the audit needs second-order accuracy
  config.tolerance = tolerance;
  const SolveResult result = prog.solve(config);
  if (!result.feasible) return false;
  // Audit the returned certificate rather than trusting the solver status.
  const CheckReport report = check_gram_identity(p, result.grams.front(), {});
  return report.ok;
}

std::vector<Polynomial> sos_decomposition(const GramCertificate& cert, std::size_t nvars) {
  const Matrix root = linalg::sqrt_psd(cert.gram);
  std::vector<Polynomial> terms;
  const std::size_t n = cert.basis.size();
  terms.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    // q_k = sum_r root(k, r) * basis_r  (rows of the symmetric square root).
    Polynomial q(nvars);
    for (std::size_t r = 0; r < n; ++r) {
      if (root(k, r) != 0.0) q.add_term(cert.basis[r], root(k, r));
    }
    if (!q.is_zero()) terms.push_back(std::move(q));
  }
  return terms;
}

SampleReport sample_minimum(const Polynomial& p, const hybrid::SemialgebraicSet& set,
                            const std::vector<std::pair<double, double>>& box,
                            std::size_t samples, util::Rng& rng) {
  SampleReport report;
  report.min_value = std::numeric_limits<double>::infinity();
  linalg::Vector x(p.nvars(), 0.0);
  for (std::size_t s = 0; s < samples; ++s) {
    for (std::size_t i = 0; i < box.size() && i < x.size(); ++i)
      x[i] = rng.uniform(box[i].first, box[i].second);
    if (!set.empty() && !set.contains(x)) continue;
    ++report.inside;
    const double v = p.eval(x);
    if (v < report.min_value) {
      report.min_value = v;
      report.argmin = x;
    }
  }
  if (report.inside == 0) report.min_value = 0.0;
  return report;
}

AuditReport audit(const SosProgram& program, const SolveResult& result,
                  const CheckOptions& options) {
  AuditReport report;
  report.worst_eigenvalue = std::numeric_limits<double>::infinity();

  // (a) every explicit SOS constraint: identity + PSD. A sparse constraint
  // owns one Gram block per clique; they recombine into the dense
  // certificate the identity/PSD check was written for, so the soundness
  // verdict is decided in exactly the same terms as a dense solve.
  for (const auto& record : program.sos_records()) {
    ++report.checked;
    const Polynomial target = result.value(record.target);
    CheckReport check;
    if (record.gram_indices.size() == 1) {
      check = check_gram_identity(target, result.grams[record.gram_indices.front()], options);
    } else {
      std::vector<GramCertificate> parts;
      parts.reserve(record.gram_indices.size());
      for (const std::size_t g : record.gram_indices) parts.push_back(result.grams[g]);
      check = check_gram_identity(target, recombine_cliques(parts), options);
    }
    report.worst_residual = std::max(report.worst_residual, check.residual);
    report.worst_eigenvalue = std::min(report.worst_eigenvalue, check.min_eigenvalue);
    if (!check.ok) {
      ++report.failed;
      report.failures.push_back("constraint '" + record.label + "': " + check.detail);
    }
  }

  // (b) every Gram block must be PSD (covers SOS polynomial variables whose
  // identity holds by construction).
  for (const auto& cert : result.grams) {
    ++report.checked;
    if (cert.gram.rows() == 0) continue;
    const double min_eig = linalg::min_eigenvalue(cert.gram);
    report.worst_eigenvalue = std::min(report.worst_eigenvalue, min_eig);
    double trace = 0.0;
    for (std::size_t i = 0; i < cert.gram.rows(); ++i) trace += cert.gram(i, i);
    const double scale = std::max(1.0, trace / static_cast<double>(cert.gram.rows()));
    if (min_eig < -options.psd_tol * scale) {
      ++report.failed;
      report.failures.push_back("gram '" + cert.label + "' not PSD (min eig " +
                                std::to_string(min_eig) + ")");
    }
  }

  report.ok = report.failed == 0;
  return report;
}

}  // namespace soslock::sos
