#pragma once
// Independent certificate checker. SOS relaxations are *sound* only if the
// numerical certificate actually satisfies (i) the polynomial identity and
// (ii) Gram positive semidefiniteness. The IPM returns approximate iterates,
// so every certificate produced by the pipeline is re-audited here with
// tolerances that are explicit and separate from solver tolerances.
#include <string>
#include <vector>

#include "hybrid/semialgebraic.hpp"
#include "poly/polynomial.hpp"
#include "sos/program.hpp"
#include "util/rng.hpp"

namespace soslock::sos {

struct CheckOptions {
  /// Allowed relative identity residual |p - b'Gb| / max(1, |p|_inf).
  double residual_tol = 1e-5;
  /// Allowed Gram eigenvalue deficit (relative to trace scale).
  double psd_tol = 1e-7;
};

struct CheckReport {
  bool ok = false;
  double min_eigenvalue = 0.0;   // of the Gram matrix
  double residual = 0.0;         // identity residual (relative)
  std::string detail;
};

/// Verify that `p` equals basis' G basis with G PSD (up to tolerances).
CheckReport check_gram_identity(const poly::Polynomial& p, const GramCertificate& cert,
                                const CheckOptions& options = {});

/// Scatter-sum the clique Gram certificates of one correlative-sparsity SOS
/// constraint into a single dense certificate over the union basis. The
/// result is PSD whenever every clique Gram is (a sum of padded PSD blocks —
/// Agler) and represents the same polynomial, so the dense audit applies
/// unchanged to sparse solves. Returns an empty-gram certificate when any
/// part's Gram does not match its basis (which the audit then rejects).
GramCertificate recombine_cliques(const std::vector<GramCertificate>& parts);

/// Decide numerically whether `p` is SOS by solving a fresh Gram SDP.
bool is_sos_numeric(const poly::Polynomial& p, double tolerance = 1e-7);

/// Extract an explicit SOS decomposition p ≈ sum_k q_k^2 from a certificate
/// (columns of the PSD square root); tiny negative eigenvalues are clamped.
std::vector<poly::Polynomial> sos_decomposition(const GramCertificate& cert, std::size_t nvars);

/// Sampling audit: min of `p` over `samples` random points of `set`'s
/// bounding box that lie inside `set`. A cheap necessary check that a claimed
/// nonnegativity actually holds on the region of interest.
struct SampleReport {
  double min_value = 0.0;
  linalg::Vector argmin;
  std::size_t inside = 0;  // how many sampled points were inside the set
};
SampleReport sample_minimum(const poly::Polynomial& p, const hybrid::SemialgebraicSet& set,
                            const std::vector<std::pair<double, double>>& box,
                            std::size_t samples, util::Rng& rng);

/// Full audit of a solved program: every recorded `p ∈ Σ` constraint is
/// re-checked (identity residual + Gram PSD margin), and every auxiliary
/// Gram block (SOS polynomial variables / multipliers) is checked for PSD.
struct AuditReport {
  bool ok = false;
  std::size_t checked = 0;
  std::size_t failed = 0;
  double worst_residual = 0.0;
  double worst_eigenvalue = 0.0;
  std::vector<std::string> failures;
};
AuditReport audit(const SosProgram& program, const SolveResult& result,
                  const CheckOptions& options = {});

}  // namespace soslock::sos
