#include "sim/monte_carlo.hpp"

#include <algorithm>
#include <cmath>

#include "util/log.hpp"

namespace soslock::sim {

using linalg::Vector;

LockStudyResult lock_study(const pll::FullPllModel& model, const LockStudyOptions& options) {
  LockStudyResult result;
  util::Rng rng(options.seed);
  const std::size_t nv = model.num_voltages();
  for (std::size_t trial = 0; trial < options.trials; ++trial) {
    std::vector<double> v0(nv);
    for (double& v : v0) v = rng.uniform(-options.v_range, options.v_range);
    const double e0 = rng.uniform(-options.e_range, options.e_range);
    const pll::FullSimResult sim = model.simulate(v0, e0, options.sim);
    ++result.total;
    if (sim.locked) {
      ++result.locked;
      result.mean_lock_time += sim.lock_time;
      result.max_lock_time = std::max(result.max_lock_time, sim.lock_time);
    }
    if (sim.cycle_slips > 0) ++result.trials_with_cycle_slip;
  }
  if (result.locked > 0) result.mean_lock_time /= static_cast<double>(result.locked);
  return result;
}

namespace {

Vector full_point(const hybrid::HybridSystem& system, const Vector& x) {
  Vector full(system.nvars(), 0.0);
  std::copy(x.begin(), x.end(), full.begin());
  const Vector& u = system.nominal_parameters();
  std::copy(u.begin(), u.end(), full.begin() + static_cast<std::ptrdiff_t>(system.nstates()));
  return full;
}

/// Sample a state inside the invariant (rejection sampling over the box);
/// returns false if no point was found.
bool sample_inside(const hybrid::HybridSystem& system,
                   const core::AttractiveInvariant& invariant,
                   const std::vector<std::pair<double, double>>& box, util::Rng& rng,
                   Vector& out) {
  for (int attempt = 0; attempt < 2000; ++attempt) {
    Vector x(system.nstates());
    for (std::size_t i = 0; i < x.size(); ++i)
      x[i] = rng.uniform(box[i].first, box[i].second);
    if (invariant.contains_consistent(full_point(system, x))) {
      out = std::move(x);
      return true;
    }
  }
  return false;
}

/// The mode whose domain contains x and whose V is smallest there.
std::size_t pick_mode(const hybrid::HybridSystem& system,
                      const core::AttractiveInvariant& invariant, const Vector& full) {
  std::size_t best = 0;
  double best_v = std::numeric_limits<double>::infinity();
  for (std::size_t q = 0; q < system.modes().size(); ++q) {
    if (!system.modes()[q].domain.contains(full, 1e-9)) continue;
    const double v = invariant.certificates[q].eval(full);
    if (v < best_v) {
      best_v = v;
      best = q;
    }
  }
  return best;
}

}  // namespace

DecreaseStudyResult decrease_study(const hybrid::HybridSystem& system,
                                   const core::AttractiveInvariant& invariant,
                                   const std::vector<std::pair<double, double>>& state_box,
                                   const DecreaseStudyOptions& options) {
  DecreaseStudyResult result;
  util::Rng rng(options.seed);
  const hybrid::Simulator simulator(system);

  for (std::size_t trial = 0; trial < options.trials; ++trial) {
    Vector x0;
    if (!sample_inside(system, invariant, state_box, rng, x0)) continue;
    const std::size_t mode0 = pick_mode(system, invariant, full_point(system, x0));
    const hybrid::SimResult sim = simulator.run(mode0, x0, options.sim);

    double prev_v = std::numeric_limits<double>::infinity();
    int prev_jumps = -1;
    for (const hybrid::TracePoint& pt : sim.trace) {
      const Vector full = full_point(system, pt.x);
      const double v = invariant.certificates[pt.mode].eval(full);
      // Along flows V must not increase; across jumps the multiple-Lyapunov
      // condition also forbids increase (identity resets).
      if (prev_jumps >= 0) {
        result.worst_increase = std::max(result.worst_increase, v - prev_v);
      }
      prev_v = v;
      prev_jumps = pt.jumps;
      ++result.points_checked;
    }
  }
  result.ok = result.worst_increase <= options.tolerance;
  return result;
}

InvarianceStudyResult invariance_study(const hybrid::HybridSystem& system,
                                       const core::AttractiveInvariant& invariant,
                                       const std::vector<std::pair<double, double>>& state_box,
                                       const DecreaseStudyOptions& options) {
  InvarianceStudyResult result;
  util::Rng rng(options.seed);
  const hybrid::Simulator simulator(system);

  for (std::size_t trial = 0; trial < options.trials; ++trial) {
    Vector x0;
    if (!sample_inside(system, invariant, state_box, rng, x0)) continue;
    const std::size_t mode0 = pick_mode(system, invariant, full_point(system, x0));
    const hybrid::SimResult sim = simulator.run(mode0, x0, options.sim);
    ++result.total;
    bool stayed = true;
    for (const hybrid::TracePoint& pt : sim.trace) {
      if (!invariant.contains(full_point(system, pt.x))) {
        stayed = false;
        break;
      }
    }
    if (stayed) ++result.stayed;
  }
  return result;
}

}  // namespace soslock::sim
