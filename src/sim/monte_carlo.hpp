#pragma once
// Monte-Carlo validation harness. Certificates are *proofs* about the reduced
// model; these studies empirically confirm that the certified statements
// match the behaviour of the event-driven circuit model:
//   * lock_study: do randomized initial states of the full PLL model lock?
//   * decrease_study: is V_q non-increasing along simulated hybrid arcs?
//   * invariance_study: do trajectories started inside the attractive
//     invariant stay inside it?
#include <cstdint>

#include "core/level_set.hpp"
#include "hybrid/simulator.hpp"
#include "pll/full_model.hpp"
#include "util/rng.hpp"

namespace soslock::sim {

struct LockStudyOptions {
  std::size_t trials = 100;
  std::uint64_t seed = 42;
  double v_range = 4.0;   // initial |v~| bound
  double e_range = 0.9;   // initial |e| bound (cycles)
  pll::FullSimOptions sim;
};

struct LockStudyResult {
  std::size_t locked = 0;
  std::size_t total = 0;
  double mean_lock_time = 0.0;
  double max_lock_time = 0.0;
  std::size_t trials_with_cycle_slip = 0;
  double lock_fraction() const {
    return total == 0 ? 0.0 : static_cast<double>(locked) / static_cast<double>(total);
  }
};

LockStudyResult lock_study(const pll::FullPllModel& model, const LockStudyOptions& options);

struct DecreaseStudyOptions {
  std::size_t trials = 50;
  std::uint64_t seed = 7;
  double tolerance = 1e-6;   // allowed V increase between consecutive samples
  hybrid::SimOptions sim;
};

struct DecreaseStudyResult {
  bool ok = false;
  double worst_increase = 0.0;   // largest observed V increase along a flow
  std::size_t points_checked = 0;
};

/// Check V_q non-increase along simulated hybrid arcs, starting from random
/// points inside the attractive invariant.
DecreaseStudyResult decrease_study(const hybrid::HybridSystem& system,
                                   const core::AttractiveInvariant& invariant,
                                   const std::vector<std::pair<double, double>>& state_box,
                                   const DecreaseStudyOptions& options);

struct InvarianceStudyResult {
  std::size_t stayed = 0;
  std::size_t total = 0;
  bool ok() const { return stayed == total; }
};

/// Trajectories started inside the invariant (consistent level) must remain
/// inside the per-mode-level union.
InvarianceStudyResult invariance_study(const hybrid::HybridSystem& system,
                                       const core::AttractiveInvariant& invariant,
                                       const std::vector<std::pair<double, double>>& state_box,
                                       const DecreaseStudyOptions& options);

}  // namespace soslock::sim
