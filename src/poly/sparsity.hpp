#pragma once
// Correlative sparsity for Gram (SOS) parametrizations (Waki et al., sparse
// SOS relaxations). The csp graph of a constraint's support couples two
// indeterminates iff they co-occur in some support monomial; a chordal
// extension of that graph yields variable cliques, and the dense Gram basis
// splits into per-clique bases
//
//   basis_k = { m in dense basis : vars(m) ⊆ C_k },
//
// replacing the single dense Gram block by one block per clique with
//   p = sum_k basis_k' G_k basis_k.
//
// This is a sound restriction of the dense SOS test: any solution gives a
// dense PSD Gram by scatter-summing the clique Grams (Agler), so certificate
// auditing is unchanged. Dense monomials covered by no clique are dropped —
// exactly the sparse-relaxation restriction; the split composes with the
// Newton-polytope prune, which shrinks the dense basis first.
#include <cstddef>
#include <vector>

#include "poly/basis.hpp"
#include "util/chordal.hpp"

namespace soslock::poly {

/// Result of splitting one constraint's Gram basis along the csp cliques.
struct GramCliqueSplit {
  /// Variable cliques of the chordal extension (RIP preorder, vars sorted).
  /// Aligned with `bases`; cliques whose basis came out empty are removed.
  std::vector<std::vector<std::size_t>> cliques;
  std::vector<std::vector<Monomial>> bases;
  std::size_t dense_size = 0;  // size of the unsplit (pruned) basis
  std::size_t dropped = 0;     // dense monomials covered by no clique
  /// A trivial split (<= 1 clique) gains nothing over the dense block.
  bool trivial() const { return bases.size() <= 1; }
  std::size_t max_basis_size() const;
};

/// Correlative-sparsity pattern graph of a support: vertices are the `nvars`
/// indeterminates, with an edge between two iff they co-occur in a support
/// monomial. Variables absent from the support stay isolated.
util::Adjacency correlative_adjacency(std::size_t nvars,
                                      const std::vector<Monomial>& support);

/// Variable cliques of the chordal extension of a support's csp graph (RIP
/// preorder, vars sorted). The support/csp analysis primitive of the
/// sdp/lowering pipeline's "analyze" stage: certifiers use it to build
/// clique-structured certificate templates (e.g. the Lyapunov
/// sparse_template on the clock-tree models) and diagnostics report it as
/// the csp decomposition of a target polynomial.
std::vector<std::vector<std::size_t>> support_cliques(std::size_t nvars,
                                                      const std::vector<Monomial>& support);

/// Split the pruned Gram basis of `info` along the maximal cliques of the
/// chordal extension of its csp graph. Falls back to a single dense clique
/// when the support is empty or the graph is (close to) complete.
GramCliqueSplit split_gram_basis(std::size_t nvars, const SupportInfo& info,
                                 GramPrune prune);
/// Same, with the pruned dense basis already computed by the caller (the SOS
/// compiler computes it once and reuses it on a trivial split — the
/// Newton-polytope prune is the expensive part).
GramCliqueSplit split_gram_basis(std::size_t nvars, const SupportInfo& info,
                                 std::vector<Monomial> dense);

/// Csp-clique-restricted S-procedure multiplier bases (the constrained half
/// of Waki's sparse relaxation). The certifier records the couplings of its
/// *data* polynomials (targets, flows, set constraints — everything except
/// the multipliers themselves); each multiplier of a constraint g then gets
/// the monomials of the smallest chordal-extension clique covering vars(g)
/// instead of the full variable set. Variables inactive in the data become
/// singleton cliques, so e.g. a parameter the target never touches is
/// dropped from every state-constraint multiplier — a provably lossless
/// restriction (substituting the inactive variable by 0 maps any dense
/// solution to a restricted one). Genuine cross-clique restrictions are the
/// standard sparse-relaxation trade: sound, possibly conservative.
class MultiplierSparsity {
 public:
  MultiplierSparsity(std::size_t nvars, bool enabled);

  void couple(const std::vector<Monomial>& support);
  void couple(const Polynomial& p);
  void couple(const PolyLin& p);

  /// Gram basis for a multiplier of `g` at SOS degree `max_deg` (matching
  /// SosProgram::add_sos_poly(max_deg, 0): monomials of degree <=
  /// max_deg/2), restricted to the smallest clique covering vars(g). Returns
  /// the full-variable basis when disabled, when g is constant, or when no
  /// clique covers vars(g).
  std::vector<Monomial> multiplier_basis(const Polynomial& g, unsigned max_deg) const;

  bool enabled() const { return enabled_; }

 private:
  void finalize() const;

  std::size_t nvars_ = 0;
  bool enabled_ = false;
  util::Adjacency adj_;
  mutable bool finalized_ = false;
  mutable std::vector<std::vector<std::size_t>> cliques_;  // sorted by size
};

}  // namespace soslock::poly
