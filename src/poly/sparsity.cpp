#include "poly/sparsity.hpp"

#include <algorithm>

namespace soslock::poly {

std::size_t GramCliqueSplit::max_basis_size() const {
  std::size_t mx = 0;
  for (const auto& b : bases) mx = std::max(mx, b.size());
  return mx;
}

namespace {

/// Mark the pairwise co-occurrence edges of one monomial; returns whether
/// any bit actually flipped (callers use that to keep clique caches valid).
bool mark_cooccurrence(util::Adjacency& adj, const Monomial& m, std::size_t nvars) {
  bool changed = false;
  for (std::size_t a = 0; a < nvars; ++a) {
    if (m.exponent(a) == 0) continue;
    for (std::size_t b = a + 1; b < nvars; ++b) {
      if (m.exponent(b) == 0 || adj[a][b]) continue;
      adj[a][b] = true;
      adj[b][a] = true;
      changed = true;
    }
  }
  return changed;
}

}  // namespace

util::Adjacency correlative_adjacency(std::size_t nvars,
                                      const std::vector<Monomial>& support) {
  util::Adjacency adj(nvars, std::vector<bool>(nvars, false));
  for (const Monomial& m : support) mark_cooccurrence(adj, m, nvars);
  return adj;
}

std::vector<std::vector<std::size_t>> support_cliques(std::size_t nvars,
                                                      const std::vector<Monomial>& support) {
  return util::chordal_cliques(nvars, correlative_adjacency(nvars, support)).cliques;
}

GramCliqueSplit split_gram_basis(std::size_t nvars, const SupportInfo& info,
                                 GramPrune prune) {
  return split_gram_basis(nvars, info, gram_basis(nvars, info, prune));
}

GramCliqueSplit split_gram_basis(std::size_t nvars, const SupportInfo& info,
                                 std::vector<Monomial> dense) {
  GramCliqueSplit split;
  split.dense_size = dense.size();
  if (dense.empty()) return split;
  if (info.support.empty()) {
    // No exact support (degree-window-only SupportInfo): no csp graph to
    // exploit, keep the dense block.
    split.cliques.push_back({});
    split.bases.push_back(std::move(dense));
    return split;
  }

  // Cliques over the *active* variables only; inactive ones would surface as
  // singleton cliques whose basis is pure redundancy (only the constant
  // monomial could land there, and it lands in every clique anyway).
  std::vector<std::size_t> active;
  std::vector<bool> is_active(nvars, false);
  for (const Monomial& m : info.support) {
    for (std::size_t v = 0; v < nvars; ++v) {
      if (m.exponent(v) > 0 && !is_active[v]) {
        is_active[v] = true;
        active.push_back(v);
      }
    }
  }
  std::sort(active.begin(), active.end());
  if (active.empty()) {
    split.cliques.push_back({});
    split.bases.push_back(std::move(dense));
    return split;
  }

  const util::Adjacency full = correlative_adjacency(nvars, info.support);
  util::Adjacency sub(active.size(), std::vector<bool>(active.size(), false));
  for (std::size_t a = 0; a < active.size(); ++a)
    for (std::size_t b = 0; b < active.size(); ++b) sub[a][b] = full[active[a]][active[b]];
  const util::CliqueForest forest = util::chordal_cliques(active.size(), sub);

  std::vector<std::vector<std::size_t>> cliques;
  cliques.reserve(forest.cliques.size());
  for (const auto& c : forest.cliques) {
    std::vector<std::size_t> vars;
    vars.reserve(c.size());
    for (const std::size_t local : c) vars.push_back(active[local]);
    std::sort(vars.begin(), vars.end());
    cliques.push_back(std::move(vars));
  }

  // Assign each dense basis monomial to every clique containing its variable
  // set (a monomial over a clique intersection belongs to all of them — the
  // standard Waki split; restricting shared monomials to one clique would cut
  // representations the sparse relaxation is entitled to).
  std::vector<std::vector<Monomial>> bases(cliques.size());
  for (const Monomial& m : dense) {
    bool covered = false;
    for (std::size_t k = 0; k < cliques.size(); ++k) {
      bool inside = true;
      for (std::size_t v = 0; v < nvars && inside; ++v) {
        if (m.exponent(v) > 0 &&
            !std::binary_search(cliques[k].begin(), cliques[k].end(), v)) {
          inside = false;
        }
      }
      if (inside) {
        bases[k].push_back(m);
        covered = true;
      }
    }
    if (!covered) ++split.dropped;
  }

  for (std::size_t k = 0; k < cliques.size(); ++k) {
    if (bases[k].empty()) continue;
    split.cliques.push_back(std::move(cliques[k]));
    split.bases.push_back(std::move(bases[k]));
  }
  if (split.bases.empty()) {
    // Everything was cross-clique (cannot happen with a sound chordal cover,
    // but stay safe): fall back to the dense block.
    split.dropped = 0;
    split.cliques.assign(1, {});
    split.bases.assign(1, std::move(dense));
  }
  return split;
}

MultiplierSparsity::MultiplierSparsity(std::size_t nvars, bool enabled)
    : nvars_(nvars), enabled_(enabled) {
  if (enabled_) adj_.assign(nvars, std::vector<bool>(nvars, false));
}

void MultiplierSparsity::couple(const std::vector<Monomial>& support) {
  if (!enabled_) return;
  // Only invalidate the lazily-built clique cache when an edge actually
  // flipped — re-coupling already-known data (the certifiers couple per
  // constraint) must not force an O(n^3) chordal recomputation each time.
  for (const Monomial& m : support) {
    if (mark_cooccurrence(adj_, m, nvars_)) finalized_ = false;
  }
}

void MultiplierSparsity::couple(const Polynomial& p) { couple(support_info(p).support); }

void MultiplierSparsity::couple(const PolyLin& p) { couple(support_info(p).support); }

void MultiplierSparsity::finalize() const {
  if (finalized_) return;
  // Cliques over *all* variables: data-inactive ones surface as singleton
  // cliques, which is what lets a parameter-only constraint get a univariate
  // multiplier.
  const util::CliqueForest forest = util::chordal_cliques(nvars_, adj_);
  cliques_ = forest.cliques;
  std::stable_sort(cliques_.begin(), cliques_.end(),
                   [](const auto& a, const auto& b) { return a.size() < b.size(); });
  finalized_ = true;
}

std::vector<Monomial> MultiplierSparsity::multiplier_basis(const Polynomial& g,
                                                           unsigned max_deg) const {
  const unsigned half = max_deg / 2;
  if (!enabled_) return monomials_up_to(nvars_, half, 0);
  std::vector<std::size_t> vars;
  for (std::size_t v = 0; v < nvars_; ++v) {
    for (const auto& [m, c] : g.terms()) {
      if (m.exponent(v) > 0) {
        vars.push_back(v);
        break;
      }
    }
  }
  if (vars.empty()) return monomials_up_to(nvars_, half, 0);
  finalize();
  for (const auto& clique : cliques_) {
    bool covered = true;
    for (const std::size_t v : vars) {
      if (!std::binary_search(clique.begin(), clique.end(), v)) {
        covered = false;
        break;
      }
    }
    if (!covered) continue;
    // Monomials over the clique variables only, remapped to full width.
    const std::vector<Monomial> local = monomials_up_to(clique.size(), half, 0);
    std::vector<Monomial> out;
    out.reserve(local.size());
    for (const Monomial& lm : local) {
      Monomial m(nvars_);
      for (std::size_t a = 0; a < clique.size(); ++a)
        m.set_exponent(clique[a], lm.exponent(a));
      out.push_back(std::move(m));
    }
    std::sort(out.begin(), out.end());
    return out;
  }
  return monomials_up_to(nvars_, half, 0);
}

}  // namespace soslock::poly
