#include "poly/poly_lin.hpp"

#include <cassert>
#include <set>

namespace soslock::poly {

PolyLin::PolyLin(const Polynomial& p) : nvars_(p.nvars()) {
  for (const auto& [m, c] : p.terms()) terms_[m] = LinExpr(c);
}

unsigned PolyLin::degree() const {
  unsigned d = 0;
  for (const auto& [m, e] : terms_) d = std::max(d, m.degree());
  return d;
}

void PolyLin::add_term(const Monomial& m, const LinExpr& e) {
  assert(m.nvars() == nvars_);
  if (e.is_zero()) return;
  auto [it, inserted] = terms_.try_emplace(m, e);
  if (!inserted) {
    it->second += e;
    if (it->second.is_zero()) terms_.erase(it);
  }
}

LinExpr PolyLin::coefficient(const Monomial& m) const {
  const auto it = terms_.find(m);
  return it == terms_.end() ? LinExpr() : it->second;
}

PolyLin PolyLin::operator-() const {
  PolyLin p(nvars_);
  for (const auto& [m, e] : terms_) p.terms_[m] = -e;
  return p;
}

PolyLin& PolyLin::operator+=(const PolyLin& other) {
  if (terms_.empty()) nvars_ = std::max(nvars_, other.nvars_);
  assert(nvars_ == other.nvars_ || other.terms_.empty());
  for (const auto& [m, e] : other.terms_) add_term(m, e);
  return *this;
}

PolyLin& PolyLin::operator-=(const PolyLin& other) {
  if (terms_.empty()) nvars_ = std::max(nvars_, other.nvars_);
  assert(nvars_ == other.nvars_ || other.terms_.empty());
  for (const auto& [m, e] : other.terms_) add_term(m, -e);
  return *this;
}

PolyLin& PolyLin::operator*=(double s) {
  if (s == 0.0) {
    terms_.clear();
    return *this;
  }
  for (auto& [m, e] : terms_) e *= s;
  return *this;
}

PolyLin PolyLin::operator*(const Polynomial& p) const {
  assert(nvars_ == p.nvars() || is_zero() || p.is_zero());
  PolyLin out(std::max(nvars_, p.nvars()));
  for (const auto& [ma, ea] : terms_)
    for (const auto& [mb, cb] : p.terms()) out.add_term(ma * mb, cb * ea);
  return out;
}

PolyLin PolyLin::derivative(std::size_t var) const {
  assert(var < nvars_);
  PolyLin out(nvars_);
  for (const auto& [m, e] : terms_) {
    const unsigned ex = m.exponent(var);
    if (ex == 0) continue;
    Monomial dm = m;
    dm.set_exponent(var, ex - 1);
    out.add_term(dm, static_cast<double>(ex) * e);
  }
  return out;
}

PolyLin PolyLin::lie_derivative(const std::vector<Polynomial>& f) const {
  assert(f.size() <= nvars_);
  PolyLin out(nvars_);
  for (std::size_t i = 0; i < f.size(); ++i) out += derivative(i) * f[i];
  return out;
}

Polynomial PolyLin::eval_decision(const linalg::Vector& values) const {
  Polynomial p(nvars_);
  for (const auto& [m, e] : terms_) p.add_term(m, e.eval(values));
  return p;
}

std::vector<int> PolyLin::decision_variables() const {
  std::set<int> vars;
  for (const auto& [m, e] : terms_)
    for (const auto& [v, c] : e.coeffs()) vars.insert(v);
  return {vars.begin(), vars.end()};
}

std::string PolyLin::str(const std::vector<std::string>& names) const {
  if (terms_.empty()) return "0";
  std::string out;
  for (const auto& [m, e] : terms_) {
    if (!out.empty()) out += " + ";
    out += "(" + e.str() + ")*" + m.str(names);
  }
  return out;
}

PolyLin operator+(PolyLin a, const PolyLin& b) {
  a += b;
  return a;
}

PolyLin operator-(PolyLin a, const PolyLin& b) {
  a -= b;
  return a;
}

PolyLin operator*(double s, PolyLin a) {
  a *= s;
  return a;
}

}  // namespace soslock::poly
