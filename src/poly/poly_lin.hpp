#pragma once
// Polynomials in the indeterminates x whose coefficients are affine
// expressions in scalar decision variables — the working currency of the SOS
// compiler. Every SOS program constraint is a PolyLin identity.
#include <map>
#include <string>
#include <vector>

#include "poly/lin_expr.hpp"
#include "poly/polynomial.hpp"

namespace soslock::poly {

class PolyLin {
 public:
  PolyLin() = default;
  explicit PolyLin(std::size_t nvars) : nvars_(nvars) {}
  /// Promote a numeric polynomial (constant coefficients).
  /*implicit*/ PolyLin(const Polynomial& p);

  std::size_t nvars() const { return nvars_; }
  bool is_zero() const { return terms_.empty(); }
  unsigned degree() const;
  const std::map<Monomial, LinExpr>& terms() const { return terms_; }

  void add_term(const Monomial& m, const LinExpr& e);
  LinExpr coefficient(const Monomial& m) const;

  PolyLin operator-() const;
  PolyLin& operator+=(const PolyLin& other);
  PolyLin& operator-=(const PolyLin& other);
  PolyLin& operator*=(double s);

  /// Product with a *numeric* polynomial (keeps coefficients affine).
  PolyLin operator*(const Polynomial& p) const;

  /// Partial derivative with respect to indeterminate `var`.
  PolyLin derivative(std::size_t var) const;
  /// Lie derivative sum_i d/dx_i * f[i] over the first f.size() vars.
  PolyLin lie_derivative(const std::vector<Polynomial>& f) const;

  /// Instantiate decision variables: returns a numeric polynomial.
  Polynomial eval_decision(const linalg::Vector& values) const;

  /// Set of decision variable ids referenced.
  std::vector<int> decision_variables() const;

  std::string str(const std::vector<std::string>& names = {}) const;

 private:
  std::size_t nvars_ = 0;
  std::map<Monomial, LinExpr> terms_;
};

PolyLin operator+(PolyLin a, const PolyLin& b);
PolyLin operator-(PolyLin a, const PolyLin& b);
PolyLin operator*(double s, PolyLin a);

}  // namespace soslock::poly
