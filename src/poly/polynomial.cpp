#include "poly/polynomial.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace soslock::poly {

Polynomial Polynomial::constant(std::size_t nvars, double value) {
  Polynomial p(nvars);
  if (value != 0.0) p.terms_[Monomial(nvars)] = value;
  return p;
}

Polynomial Polynomial::variable(std::size_t nvars, std::size_t var) {
  Polynomial p(nvars);
  p.terms_[Monomial::variable(nvars, var)] = 1.0;
  return p;
}

Polynomial Polynomial::from_monomial(const Monomial& m, double coeff) {
  Polynomial p(m.nvars());
  if (coeff != 0.0) p.terms_[m] = coeff;
  return p;
}

Polynomial Polynomial::affine(std::size_t nvars, const linalg::Vector& lin, double c) {
  assert(lin.size() <= nvars);
  Polynomial p = constant(nvars, c);
  for (std::size_t i = 0; i < lin.size(); ++i)
    if (lin[i] != 0.0) p.terms_[Monomial::variable(nvars, i)] = lin[i];
  return p;
}

unsigned Polynomial::degree() const {
  unsigned d = 0;
  for (const auto& [m, c] : terms_) d = std::max(d, m.degree());
  return d;
}

unsigned Polynomial::min_degree() const {
  if (terms_.empty()) return 0;
  unsigned d = ~0u;
  for (const auto& [m, c] : terms_) d = std::min(d, m.degree());
  return d;
}

unsigned Polynomial::degree_in(std::size_t var) const {
  unsigned d = 0;
  for (const auto& [m, c] : terms_) d = std::max(d, m.exponent(var));
  return d;
}

double Polynomial::coefficient(const Monomial& m) const {
  const auto it = terms_.find(m);
  return it == terms_.end() ? 0.0 : it->second;
}

void Polynomial::set_coefficient(const Monomial& m, double c) {
  assert(m.nvars() == nvars_);
  if (c == 0.0) {
    terms_.erase(m);
  } else {
    terms_[m] = c;
  }
}

void Polynomial::add_term(const Monomial& m, double c) {
  assert(m.nvars() == nvars_);
  if (c == 0.0) return;
  const double updated = (terms_[m] += c);
  if (updated == 0.0) terms_.erase(m);
}

Polynomial Polynomial::operator-() const {
  Polynomial p(*this);
  for (auto& [m, c] : p.terms_) c = -c;
  return p;
}

Polynomial& Polynomial::operator+=(const Polynomial& other) {
  assert(nvars_ == other.nvars_ || other.terms_.empty() || terms_.empty());
  if (terms_.empty()) nvars_ = std::max(nvars_, other.nvars_);
  for (const auto& [m, c] : other.terms_) add_term(m, c);
  return *this;
}

Polynomial& Polynomial::operator-=(const Polynomial& other) {
  if (terms_.empty()) nvars_ = std::max(nvars_, other.nvars_);
  for (const auto& [m, c] : other.terms_) add_term(m, -c);
  return *this;
}

Polynomial& Polynomial::operator*=(double s) {
  if (s == 0.0) {
    terms_.clear();
    return *this;
  }
  for (auto& [m, c] : terms_) c *= s;
  return *this;
}

Polynomial Polynomial::operator*(const Polynomial& other) const {
  assert(nvars_ == other.nvars_ || is_zero() || other.is_zero());
  Polynomial p(std::max(nvars_, other.nvars_));
  for (const auto& [ma, ca] : terms_)
    for (const auto& [mb, cb] : other.terms_) p.add_term(ma * mb, ca * cb);
  return p;
}

Polynomial Polynomial::pow(unsigned k) const {
  Polynomial result = constant(nvars_, 1.0);
  Polynomial base(*this);
  while (k > 0) {
    if (k & 1u) result = result * base;
    k >>= 1u;
    if (k > 0) base = base * base;
  }
  return result;
}

Polynomial Polynomial::pruned(double tol) const {
  Polynomial p(nvars_);
  for (const auto& [m, c] : terms_)
    if (std::fabs(c) > tol) p.terms_[m] = c;
  return p;
}

double Polynomial::eval(const linalg::Vector& x) const {
  double acc = 0.0;
  for (const auto& [m, c] : terms_) acc += c * m.eval(x);
  return acc;
}

Polynomial Polynomial::derivative(std::size_t var) const {
  assert(var < nvars_);
  Polynomial p(nvars_);
  for (const auto& [m, c] : terms_) {
    const unsigned e = m.exponent(var);
    if (e == 0) continue;
    Monomial dm = m;
    dm.set_exponent(var, e - 1);
    p.add_term(dm, c * static_cast<double>(e));
  }
  return p;
}

std::vector<Polynomial> Polynomial::gradient() const {
  std::vector<Polynomial> g;
  g.reserve(nvars_);
  for (std::size_t i = 0; i < nvars_; ++i) g.push_back(derivative(i));
  return g;
}

Polynomial Polynomial::lie_derivative(const std::vector<Polynomial>& f) const {
  assert(f.size() <= nvars_);
  Polynomial p(nvars_);
  for (std::size_t i = 0; i < f.size(); ++i) p += derivative(i) * f[i];
  return p;
}

Polynomial Polynomial::substitute(const std::vector<Polynomial>& repl) const {
  assert(repl.size() == nvars_);
  const std::size_t out_vars = repl.empty() ? nvars_ : repl.front().nvars();
  Polynomial result(out_vars);
  for (const auto& [m, c] : terms_) {
    Polynomial term = Polynomial::constant(out_vars, c);
    for (std::size_t i = 0; i < nvars_; ++i) {
      const unsigned e = m.exponent(i);
      if (e > 0) term = term * repl[i].pow(e);
    }
    result += term;
  }
  return result;
}

Polynomial Polynomial::remap(std::size_t new_nvars, const std::vector<std::size_t>& map) const {
  assert(map.size() == nvars_);
  Polynomial p(new_nvars);
  for (const auto& [m, c] : terms_) {
    Monomial nm(new_nvars);
    for (std::size_t i = 0; i < nvars_; ++i) {
      assert(map[i] < new_nvars);
      if (m.exponent(i) > 0) nm.set_exponent(map[i], nm.exponent(map[i]) + m.exponent(i));
    }
    p.add_term(nm, c);
  }
  return p;
}

Polynomial Polynomial::fix_variable(std::size_t var, double value) const {
  assert(var < nvars_);
  Polynomial p(nvars_);
  for (const auto& [m, c] : terms_) {
    const unsigned e = m.exponent(var);
    double scale = c;
    for (unsigned k = 0; k < e; ++k) scale *= value;
    Monomial nm = m;
    nm.set_exponent(var, 0);
    p.add_term(nm, scale);
  }
  return p;
}

double Polynomial::coeff_norm_inf() const {
  double n = 0.0;
  for (const auto& [m, c] : terms_) n = std::max(n, std::fabs(c));
  return n;
}

bool Polynomial::operator==(const Polynomial& other) const {
  return nvars_ == other.nvars_ && terms_ == other.terms_;
}

std::string Polynomial::str(const std::vector<std::string>& names) const {
  if (terms_.empty()) return "0";
  std::string out;
  char buf[64];
  bool first = true;
  // Print highest-degree terms first for readability.
  for (auto it = terms_.rbegin(); it != terms_.rend(); ++it) {
    const double c = it->second;
    if (first) {
      std::snprintf(buf, sizeof(buf), "%g", c);
      out += buf;
      first = false;
    } else {
      std::snprintf(buf, sizeof(buf), c >= 0.0 ? " + %g" : " - %g", std::fabs(c));
      out += buf;
    }
    if (!it->first.is_constant()) {
      out += "*";
      out += it->first.str(names);
    }
  }
  return out;
}

Polynomial operator+(Polynomial a, const Polynomial& b) {
  a += b;
  return a;
}

Polynomial operator-(Polynomial a, const Polynomial& b) {
  a -= b;
  return a;
}

Polynomial operator*(double s, Polynomial a) {
  a *= s;
  return a;
}

Polynomial operator+(Polynomial a, double c) {
  a += Polynomial::constant(a.nvars(), c);
  return a;
}

Polynomial operator-(Polynomial a, double c) { return a + (-c); }

Polynomial squared_norm(std::size_t nvars, std::size_t nstates) {
  Polynomial p(nvars);
  for (std::size_t i = 0; i < nstates; ++i) {
    Monomial m(nvars);
    m.set_exponent(i, 2);
    p.add_term(m, 1.0);
  }
  return p;
}

}  // namespace soslock::poly
