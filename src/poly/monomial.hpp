#pragma once
// Multivariate monomials x1^e1 ... xn^en. Ordered graded-lexicographically so
// polynomial maps have a deterministic iteration order (reproducible SDP
// assembly across runs).
#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace soslock::poly {

class Monomial {
 public:
  Monomial() = default;
  /// Constant monomial (all exponents zero) in `nvars` variables.
  explicit Monomial(std::size_t nvars) : exps_(nvars, 0) {}
  /// Monomial with explicit exponents.
  explicit Monomial(std::vector<std::uint8_t> exps) : exps_(std::move(exps)) {}

  /// x_var^power in `nvars` variables.
  static Monomial variable(std::size_t nvars, std::size_t var, unsigned power = 1);

  std::size_t nvars() const { return exps_.size(); }
  unsigned degree() const;
  unsigned exponent(std::size_t var) const { return exps_[var]; }
  void set_exponent(std::size_t var, unsigned e) { exps_[var] = static_cast<std::uint8_t>(e); }
  bool is_constant() const { return degree() == 0; }

  Monomial operator*(const Monomial& other) const;
  /// Componentwise doubling (the square of this monomial).
  Monomial squared() const { return *this * *this; }
  /// Does this divide `other` componentwise?
  bool divides(const Monomial& other) const;

  double eval(const linalg::Vector& x) const;

  /// Graded lexicographic order: first by total degree, then lexicographic.
  bool operator<(const Monomial& other) const;
  bool operator==(const Monomial& other) const { return exps_ == other.exps_; }
  bool operator!=(const Monomial& other) const { return !(*this == other); }

  /// Human-readable form, e.g. "x0^2*x2".
  std::string str(const std::vector<std::string>& names = {}) const;

 private:
  std::vector<std::uint8_t> exps_;
};

}  // namespace soslock::poly
