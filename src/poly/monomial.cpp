#include "poly/monomial.hpp"

#include <cassert>
#include <cstdio>

namespace soslock::poly {

Monomial Monomial::variable(std::size_t nvars, std::size_t var, unsigned power) {
  assert(var < nvars);
  Monomial m(nvars);
  m.exps_[var] = static_cast<std::uint8_t>(power);
  return m;
}

unsigned Monomial::degree() const {
  unsigned d = 0;
  for (std::uint8_t e : exps_) d += e;
  return d;
}

Monomial Monomial::operator*(const Monomial& other) const {
  assert(nvars() == other.nvars());
  Monomial m(*this);
  for (std::size_t i = 0; i < exps_.size(); ++i)
    m.exps_[i] = static_cast<std::uint8_t>(m.exps_[i] + other.exps_[i]);
  return m;
}

bool Monomial::divides(const Monomial& other) const {
  assert(nvars() == other.nvars());
  for (std::size_t i = 0; i < exps_.size(); ++i)
    if (exps_[i] > other.exps_[i]) return false;
  return true;
}

double Monomial::eval(const linalg::Vector& x) const {
  assert(x.size() >= exps_.size());
  double v = 1.0;
  for (std::size_t i = 0; i < exps_.size(); ++i) {
    for (unsigned k = 0; k < exps_[i]; ++k) v *= x[i];
  }
  return v;
}

bool Monomial::operator<(const Monomial& other) const {
  assert(nvars() == other.nvars());
  const unsigned da = degree(), db = other.degree();
  if (da != db) return da < db;
  return exps_ < other.exps_;  // lexicographic tiebreak
}

std::string Monomial::str(const std::vector<std::string>& names) const {
  if (is_constant()) return "1";
  std::string out;
  char buf[32];
  for (std::size_t i = 0; i < exps_.size(); ++i) {
    if (exps_[i] == 0) continue;
    if (!out.empty()) out += "*";
    if (i < names.size()) {
      out += names[i];
    } else {
      std::snprintf(buf, sizeof(buf), "x%zu", i);
      out += buf;
    }
    if (exps_[i] > 1) {
      std::snprintf(buf, sizeof(buf), "^%u", static_cast<unsigned>(exps_[i]));
      out += buf;
    }
  }
  return out;
}

}  // namespace soslock::poly
