#include "poly/lin_expr.hpp"

#include <cassert>
#include <cstdio>

namespace soslock::poly {

LinExpr LinExpr::variable(int var, double coeff) {
  LinExpr e;
  if (coeff != 0.0) e.coeffs_[var] = coeff;
  return e;
}

LinExpr LinExpr::operator-() const {
  LinExpr e;
  e.constant_ = -constant_;
  for (const auto& [v, c] : coeffs_) e.coeffs_[v] = -c;
  return e;
}

LinExpr& LinExpr::operator+=(const LinExpr& other) {
  constant_ += other.constant_;
  for (const auto& [v, c] : other.coeffs_) {
    const double updated = (coeffs_[v] += c);
    if (updated == 0.0) coeffs_.erase(v);
  }
  return *this;
}

LinExpr& LinExpr::operator-=(const LinExpr& other) {
  *this += -other;
  return *this;
}

LinExpr& LinExpr::operator*=(double s) {
  if (s == 0.0) {
    constant_ = 0.0;
    coeffs_.clear();
    return *this;
  }
  constant_ *= s;
  for (auto& [v, c] : coeffs_) c *= s;
  return *this;
}

double LinExpr::eval(const linalg::Vector& values) const {
  double acc = constant_;
  for (const auto& [v, c] : coeffs_) {
    assert(static_cast<std::size_t>(v) < values.size());
    acc += c * values[static_cast<std::size_t>(v)];
  }
  return acc;
}

std::string LinExpr::str() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", constant_);
  std::string out = buf;
  for (const auto& [v, c] : coeffs_) {
    std::snprintf(buf, sizeof(buf), " %+g*d%d", c, v);
    out += buf;
  }
  return out;
}

LinExpr operator+(LinExpr a, const LinExpr& b) {
  a += b;
  return a;
}

LinExpr operator-(LinExpr a, const LinExpr& b) {
  a -= b;
  return a;
}

LinExpr operator*(double s, LinExpr a) {
  a *= s;
  return a;
}

}  // namespace soslock::poly
