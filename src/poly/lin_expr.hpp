#pragma once
// Affine expressions c0 + sum_k a_k * d_k in scalar *decision variables* d_k
// (not the polynomial indeterminates). These are the coefficient entries of
// unknown polynomials in an SOS program.
#include <map>
#include <string>

#include "linalg/matrix.hpp"

namespace soslock::poly {

class LinExpr {
 public:
  LinExpr() = default;
  /*implicit*/ LinExpr(double constant) : constant_(constant) {}

  static LinExpr variable(int var, double coeff = 1.0);

  double constant() const { return constant_; }
  const std::map<int, double>& coeffs() const { return coeffs_; }
  bool is_constant() const { return coeffs_.empty(); }
  bool is_zero() const { return coeffs_.empty() && constant_ == 0.0; }

  LinExpr operator-() const;
  LinExpr& operator+=(const LinExpr& other);
  LinExpr& operator-=(const LinExpr& other);
  LinExpr& operator*=(double s);

  /// Evaluate given decision-variable values (indexed by variable id).
  double eval(const linalg::Vector& values) const;

  std::string str() const;

 private:
  double constant_ = 0.0;
  std::map<int, double> coeffs_;
};

LinExpr operator+(LinExpr a, const LinExpr& b);
LinExpr operator-(LinExpr a, const LinExpr& b);
LinExpr operator*(double s, LinExpr a);

}  // namespace soslock::poly
