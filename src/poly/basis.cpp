#include "poly/basis.hpp"

#include <algorithm>
#include <cassert>

namespace soslock::poly {
namespace {

void enumerate(std::size_t nvars, unsigned max_deg, std::size_t var, unsigned used,
               std::vector<std::uint8_t>& current, std::vector<Monomial>& out) {
  if (var == nvars) {
    out.emplace_back(current);
    return;
  }
  for (unsigned e = 0; e + used <= max_deg; ++e) {
    current[var] = static_cast<std::uint8_t>(e);
    enumerate(nvars, max_deg, var + 1, used + e, current, out);
  }
  current[var] = 0;
}

}  // namespace

std::vector<Monomial> monomials_up_to(std::size_t nvars, unsigned max_deg, unsigned min_deg) {
  std::vector<Monomial> all;
  std::vector<std::uint8_t> current(nvars, 0);
  enumerate(nvars, max_deg, 0, 0, current, all);
  std::vector<Monomial> out;
  out.reserve(all.size());
  for (const Monomial& m : all)
    if (m.degree() >= min_deg) out.push_back(m);
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t monomial_count(std::size_t nvars, unsigned max_deg) {
  // C(nvars + max_deg, max_deg)
  std::size_t num = 1;
  for (unsigned i = 1; i <= max_deg; ++i) {
    num = num * (nvars + i) / i;  // exact: product of consecutive integers divisible
  }
  return num;
}

SupportInfo support_info(const Polynomial& p) {
  SupportInfo info;
  info.max_degree = p.degree();
  info.min_degree = p.min_degree();
  info.max_degree_per_var.assign(p.nvars(), 0);
  for (const auto& [m, c] : p.terms())
    for (std::size_t i = 0; i < p.nvars(); ++i)
      info.max_degree_per_var[i] = std::max(info.max_degree_per_var[i], m.exponent(i));
  return info;
}

SupportInfo support_info(const PolyLin& p) {
  SupportInfo info;
  info.min_degree = ~0u;
  info.max_degree_per_var.assign(p.nvars(), 0);
  for (const auto& [m, e] : p.terms()) {
    info.max_degree = std::max(info.max_degree, m.degree());
    info.min_degree = std::min(info.min_degree, m.degree());
    for (std::size_t i = 0; i < p.nvars(); ++i)
      info.max_degree_per_var[i] = std::max(info.max_degree_per_var[i], m.exponent(i));
  }
  if (info.min_degree == ~0u) info.min_degree = 0;
  return info;
}

std::vector<Monomial> gram_basis(std::size_t nvars, const SupportInfo& info, bool prune) {
  const unsigned lo = (info.min_degree + 1) / 2;  // ceil(min/2)
  const unsigned hi = info.max_degree / 2;        // floor(max/2)
  std::vector<Monomial> base = monomials_up_to(nvars, hi, prune ? lo : 0);
  if (!prune) return base;
  std::vector<Monomial> out;
  out.reserve(base.size());
  for (const Monomial& m : base) {
    bool keep = true;
    for (std::size_t i = 0; i < nvars && keep; ++i) {
      if (2 * m.exponent(i) > info.max_degree_per_var[i]) keep = false;
    }
    if (keep) out.push_back(m);
  }
  return out;
}

}  // namespace soslock::poly
