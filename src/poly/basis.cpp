#include "poly/basis.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

namespace soslock::poly {
namespace {

void enumerate(std::size_t nvars, unsigned max_deg, std::size_t var, unsigned used,
               std::vector<std::uint8_t>& current, std::vector<Monomial>& out) {
  if (var == nvars) {
    out.emplace_back(current);
    return;
  }
  for (unsigned e = 0; e + used <= max_deg; ++e) {
    current[var] = static_cast<std::uint8_t>(e);
    enumerate(nvars, max_deg, var + 1, used + e, current, out);
  }
  current[var] = 0;
}

/// Phase-1 dense simplex deciding feasibility of { V lambda = t, 1'lambda = 1,
/// lambda >= 0 }: minimize the sum of artificial variables with Bland's rule
/// (no cycling). Rows = nvars + 1, columns = #support + artificials — tiny for
/// SOS supports, so a dense tableau is the simplest exact method available.
bool convex_combination_exists(const std::vector<double>& target,
                               const std::vector<std::vector<double>>& points) {
  const std::size_t rows = target.size() + 1;        // V lambda = t and 1'lambda = 1
  const std::size_t npts = points.size();
  const std::size_t cols = npts + rows;              // lambda block + artificial block
  constexpr double kEps = 1e-9;

  // Tableau [A | b] with artificial basis; flip row signs so b >= 0.
  std::vector<std::vector<double>> tab(rows, std::vector<double>(cols + 1, 0.0));
  for (std::size_t r = 0; r < rows; ++r) {
    double b = r < target.size() ? target[r] : 1.0;
    const double sign = b < 0.0 ? -1.0 : 1.0;
    for (std::size_t c = 0; c < npts; ++c) {
      const double a = r < target.size() ? points[c][r] : 1.0;
      tab[r][c] = sign * a;
    }
    tab[r][npts + r] = 1.0;
    tab[r][cols] = sign * b;
  }
  std::vector<std::size_t> basis(rows);
  for (std::size_t r = 0; r < rows; ++r) basis[r] = npts + r;

  // Phase-1 objective row: minimize sum of artificials == maximize -sum.
  // Reduced costs: z_c = sum over rows of tab[r][c] (artificials in basis).
  std::vector<double> z(cols + 1, 0.0);
  for (std::size_t c = 0; c <= cols; ++c)
    for (std::size_t r = 0; r < rows; ++r) z[c] += tab[r][c];

  // If the pivot cap is ever hit the LP is *undecided*; the caller treats
  // that as "inside" (keep the monomial), which is the sound direction —
  // over-pruning could cut a monomial a feasible certificate needs.
  const std::size_t max_pivots = 50 * (cols + rows);
  bool optimal = false;
  for (std::size_t pivot = 0; pivot < max_pivots; ++pivot) {
    // Bland: entering = lowest-index non-artificial column with z > eps.
    std::size_t enter = cols;
    for (std::size_t c = 0; c < npts; ++c) {
      if (z[c] > kEps) {
        enter = c;
        break;
      }
    }
    if (enter == cols) {
      optimal = true;
      break;
    }
    // Ratio test, Bland tie-break on the leaving basis index.
    std::size_t leave = rows;
    double best_ratio = 0.0;
    for (std::size_t r = 0; r < rows; ++r) {
      if (tab[r][enter] <= kEps) continue;
      const double ratio = tab[r][cols] / tab[r][enter];
      if (leave == rows || ratio < best_ratio - kEps ||
          (ratio < best_ratio + kEps && basis[r] < basis[leave])) {
        leave = r;
        best_ratio = ratio;
      }
    }
    if (leave == rows) break;  // unbounded (cannot happen in phase 1); undecided
    // Pivot.
    const double piv = tab[leave][enter];
    for (std::size_t c = 0; c <= cols; ++c) tab[leave][c] /= piv;
    for (std::size_t r = 0; r < rows; ++r) {
      if (r == leave || tab[r][enter] == 0.0) continue;
      const double f = tab[r][enter];
      for (std::size_t c = 0; c <= cols; ++c) tab[r][c] -= f * tab[leave][c];
    }
    const double fz = z[enter];
    for (std::size_t c = 0; c <= cols; ++c) z[c] -= fz * tab[leave][c];
    basis[leave] = enter;
  }
  if (!optimal) return true;  // undecided: conservatively report membership
  return z[cols] < 1e-7;      // phase-1 optimum ~0 <=> feasible
}

}  // namespace

std::vector<Monomial> monomials_up_to(std::size_t nvars, unsigned max_deg, unsigned min_deg) {
  std::vector<Monomial> all;
  std::vector<std::uint8_t> current(nvars, 0);
  enumerate(nvars, max_deg, 0, 0, current, all);
  std::vector<Monomial> out;
  out.reserve(all.size());
  for (const Monomial& m : all)
    if (m.degree() >= min_deg) out.push_back(m);
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t monomial_count(std::size_t nvars, unsigned max_deg) {
  // C(nvars + max_deg, max_deg)
  std::size_t num = 1;
  for (unsigned i = 1; i <= max_deg; ++i) {
    num = num * (nvars + i) / i;  // exact: product of consecutive integers divisible
  }
  return num;
}

SupportInfo support_info(const Polynomial& p) {
  SupportInfo info;
  info.max_degree = p.degree();
  info.min_degree = p.min_degree();
  info.max_degree_per_var.assign(p.nvars(), 0);
  info.support.reserve(p.terms().size());
  for (const auto& [m, c] : p.terms()) {
    info.support.push_back(m);
    for (std::size_t i = 0; i < p.nvars(); ++i)
      info.max_degree_per_var[i] = std::max(info.max_degree_per_var[i], m.exponent(i));
  }
  return info;
}

SupportInfo support_info(const PolyLin& p) {
  SupportInfo info;
  info.min_degree = ~0u;
  info.max_degree_per_var.assign(p.nvars(), 0);
  info.support.reserve(p.terms().size());
  for (const auto& [m, e] : p.terms()) {
    info.support.push_back(m);
    info.max_degree = std::max(info.max_degree, m.degree());
    info.min_degree = std::min(info.min_degree, m.degree());
    for (std::size_t i = 0; i < p.nvars(); ++i)
      info.max_degree_per_var[i] = std::max(info.max_degree_per_var[i], m.exponent(i));
  }
  if (info.min_degree == ~0u) info.min_degree = 0;
  return info;
}

bool in_half_newton_polytope(const Monomial& m, const std::vector<Monomial>& supp) {
  assert(!supp.empty());
  const std::size_t nvars = m.nvars();
  // 2m equal to a support point is membership without an LP.
  const Monomial m2 = m.squared();
  for (const Monomial& v : supp) {
    if (v == m2) return true;
  }
  std::vector<double> target(nvars);
  for (std::size_t i = 0; i < nvars; ++i) target[i] = 2.0 * m.exponent(i);
  std::vector<std::vector<double>> points;
  points.reserve(supp.size());
  for (const Monomial& v : supp) {
    std::vector<double> pt(nvars);
    for (std::size_t i = 0; i < nvars; ++i) pt[i] = v.exponent(i);
    points.push_back(std::move(pt));
  }
  return convex_combination_exists(target, points);
}

std::vector<Monomial> diagonal_consistency_prune(std::vector<Monomial> basis,
                                                 const std::vector<Monomial>& supp) {
  // Any feasible Gram matrix G satisfies, for each basis monomial m with
  // square 2m outside supp(p): coeff of 2m in basis' G basis = 0. When no
  // pair b1 != b2 of surviving basis monomials also sums to 2m, that equation
  // reads G_mm = 0, so PSD-ness kills row m entirely — drop m and iterate
  // (dropping m can orphan other squares, hence the fixpoint).
  std::vector<Monomial> supp_sorted = supp;
  std::sort(supp_sorted.begin(), supp_sorted.end());
  bool changed = true;
  while (changed) {
    changed = false;
    // Count how many distinct pairs b1 < b2 produce each even monomial.
    std::map<Monomial, int> pair_products;
    for (std::size_t i = 0; i < basis.size(); ++i)
      for (std::size_t j = i + 1; j < basis.size(); ++j)
        ++pair_products[basis[i] * basis[j]];
    std::vector<Monomial> kept;
    kept.reserve(basis.size());
    for (const Monomial& m : basis) {
      const Monomial m2 = m.squared();
      const bool in_supp =
          std::binary_search(supp_sorted.begin(), supp_sorted.end(), m2);
      if (in_supp || pair_products.count(m2) > 0) {
        kept.push_back(m);
      } else {
        changed = true;
      }
    }
    basis = std::move(kept);
  }
  return basis;
}

std::vector<Monomial> gram_basis(std::size_t nvars, const SupportInfo& info, GramPrune prune) {
  if (prune == GramPrune::Newton && info.support.empty()) prune = GramPrune::Box;
  const unsigned lo = (info.min_degree + 1) / 2;  // ceil(min/2)
  const unsigned hi = info.max_degree / 2;        // floor(max/2)
  std::vector<Monomial> base = monomials_up_to(nvars, hi, prune != GramPrune::None ? lo : 0);
  if (prune == GramPrune::None) return base;
  // Bounding-box prefilter (implied by the polytope test, but much cheaper).
  std::vector<Monomial> out;
  out.reserve(base.size());
  for (const Monomial& m : base) {
    bool keep = true;
    for (std::size_t i = 0; i < nvars && keep; ++i) {
      if (2 * m.exponent(i) > info.max_degree_per_var[i]) keep = false;
    }
    if (keep) out.push_back(m);
  }
  if (prune == GramPrune::Box) return out;
  std::vector<Monomial> newton;
  newton.reserve(out.size());
  for (const Monomial& m : out) {
    if (in_half_newton_polytope(m, info.support)) newton.push_back(m);
  }
  return diagonal_consistency_prune(std::move(newton), info.support);
}

std::vector<Monomial> gram_basis(std::size_t nvars, const SupportInfo& info, bool prune) {
  if (!prune) return gram_basis(nvars, info, GramPrune::None);
  return gram_basis(nvars, info,
                    info.support.empty() ? GramPrune::Box : GramPrune::Newton);
}

}  // namespace soslock::poly
