#pragma once
// Monomial basis construction for Gram (SOS) parametrizations, with sound
// support-based pruning. If p = sum q_k^2 then every monomial of every q_k
// lies in (1/2) Newton(p) (Reznick), which implies the cheap bounds
//   mindeg(p)/2 <= deg(m) <= deg(p)/2  and  2*deg_{x_i}(m) <= deg_{x_i}(p)
// (the bounding-box prune) and the exact test 2m ∈ conv(supp(p)) (the
// Newton-polytope prune, decided here by a small phase-1 simplex over the
// support exponent vectors). On top of either, the diagonal-consistency
// fixpoint removes basis monomials m whose square 2m is matched by no support
// monomial and no other basis pair: the coefficient equation for 2m then
// forces G_mm = 0, and PSD-ness zeroes the whole row, so m is dead weight.
#include <vector>

#include "poly/monomial.hpp"
#include "poly/poly_lin.hpp"
#include "poly/polynomial.hpp"

namespace soslock::poly {

/// All monomials in `nvars` variables with total degree in [min_deg, max_deg],
/// in graded-lex order.
std::vector<Monomial> monomials_up_to(std::size_t nvars, unsigned max_deg, unsigned min_deg = 0);

/// Number of monomials of degree <= d in n variables: C(n+d, d).
std::size_t monomial_count(std::size_t nvars, unsigned max_deg);

/// Structural support description of a polynomial whose Gram basis we need.
struct SupportInfo {
  unsigned max_degree = 0;
  unsigned min_degree = 0;
  std::vector<unsigned> max_degree_per_var;  // size nvars
  /// Exact support monomials (union over possibly-active terms for a
  /// PolyLin). Needed by the Newton-polytope and diagonal-consistency
  /// prunes; the box prune only uses the degree bounds above.
  std::vector<Monomial> support;
};

SupportInfo support_info(const Polynomial& p);
/// For a PolyLin, the support is the union over all (possibly active) terms.
SupportInfo support_info(const PolyLin& p);

/// How aggressively gram_basis prunes. Every level is sound (never cuts a
/// monomial some SOS decomposition needs); each is a subset of the previous.
enum class GramPrune {
  None,    // full degree-range basis
  Box,     // degree window + per-variable bounding box
  Newton,  // exact half-Newton-polytope + diagonal-consistency fixpoint
};

/// Is 2m inside conv(supp) (the Newton-polytope membership test)? `supp`
/// must be non-empty. Exposed for tests.
bool in_half_newton_polytope(const Monomial& m, const std::vector<Monomial>& supp);

/// Diagonal-consistency fixpoint: repeatedly drop basis monomials m with
/// 2m ∉ supp and no pair b1 != b2 in the surviving basis with b1+b2 = 2m.
/// Exposed for tests; gram_basis applies it after the Newton prune.
std::vector<Monomial> diagonal_consistency_prune(std::vector<Monomial> basis,
                                                 const std::vector<Monomial>& supp);

/// Gram basis for an SOS representation of a polynomial with the given
/// support. GramPrune::Newton needs info.support; when it is empty the box
/// prune is used instead.
std::vector<Monomial> gram_basis(std::size_t nvars, const SupportInfo& info, GramPrune prune);

/// Back-compatible overload: prune=true selects the strongest prune the
/// SupportInfo allows (Newton when info.support is populated, else Box).
std::vector<Monomial> gram_basis(std::size_t nvars, const SupportInfo& info, bool prune = true);

}  // namespace soslock::poly
