#pragma once
// Monomial basis construction for Gram (SOS) parametrizations, including the
// sound degree/box pruning derived from the Newton polytope property:
// if p = sum q_k^2 then every monomial of q_k lies in (1/2) Newton(p), hence
//   mindeg(p)/2 <= deg(m) <= deg(p)/2  and  2*deg_{x_i}(m) <= deg_{x_i}(p).
#include <vector>

#include "poly/monomial.hpp"
#include "poly/poly_lin.hpp"
#include "poly/polynomial.hpp"

namespace soslock::poly {

/// All monomials in `nvars` variables with total degree in [min_deg, max_deg],
/// in graded-lex order.
std::vector<Monomial> monomials_up_to(std::size_t nvars, unsigned max_deg, unsigned min_deg = 0);

/// Number of monomials of degree <= d in n variables: C(n+d, d).
std::size_t monomial_count(std::size_t nvars, unsigned max_deg);

/// Structural support description of a polynomial whose Gram basis we need.
struct SupportInfo {
  unsigned max_degree = 0;
  unsigned min_degree = 0;
  std::vector<unsigned> max_degree_per_var;  // size nvars
};

SupportInfo support_info(const Polynomial& p);
/// For a PolyLin, the support is the union over all (possibly active) terms.
SupportInfo support_info(const PolyLin& p);

/// Gram basis for an SOS representation of a polynomial with the given
/// support: monomials m with mindeg/2 <= deg(m) <= maxdeg/2 (ceil/floor) and
/// per-variable exponents at most floor(deg_{x_i}/2). Sound per the Newton
/// polytope bounding box; `prune=false` keeps the full degree-range basis.
std::vector<Monomial> gram_basis(std::size_t nvars, const SupportInfo& info, bool prune = true);

}  // namespace soslock::poly
