#pragma once
// Sparse multivariate polynomials over the reals. The state variables of the
// hybrid system and the uncertain circuit parameters share one variable
// space; conventions for which indices are states vs. parameters live in
// hybrid::HybridSystem.
#include <map>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "poly/monomial.hpp"

namespace soslock::poly {

class Polynomial {
 public:
  Polynomial() = default;
  /// Zero polynomial in `nvars` variables.
  explicit Polynomial(std::size_t nvars) : nvars_(nvars) {}

  static Polynomial constant(std::size_t nvars, double value);
  static Polynomial variable(std::size_t nvars, std::size_t var);
  static Polynomial from_monomial(const Monomial& m, double coeff = 1.0);
  /// Affine polynomial c + sum_i lin[i] * x_i.
  static Polynomial affine(std::size_t nvars, const linalg::Vector& lin, double c);

  std::size_t nvars() const { return nvars_; }
  bool is_zero() const { return terms_.empty(); }
  /// Total degree (0 for the zero polynomial).
  unsigned degree() const;
  /// Minimum total degree across terms (0 for the zero polynomial).
  unsigned min_degree() const;
  /// Max exponent of variable `var` across terms.
  unsigned degree_in(std::size_t var) const;
  std::size_t term_count() const { return terms_.size(); }

  double coefficient(const Monomial& m) const;
  void set_coefficient(const Monomial& m, double c);
  void add_term(const Monomial& m, double c);
  const std::map<Monomial, double>& terms() const { return terms_; }

  Polynomial operator-() const;
  Polynomial& operator+=(const Polynomial& other);
  Polynomial& operator-=(const Polynomial& other);
  Polynomial& operator*=(double s);
  Polynomial operator*(const Polynomial& other) const;
  Polynomial pow(unsigned k) const;

  /// Drop terms with |coeff| <= tol (absolute).
  Polynomial pruned(double tol = 0.0) const;

  double eval(const linalg::Vector& x) const;
  /// Partial derivative with respect to variable `var`.
  Polynomial derivative(std::size_t var) const;
  /// Gradient as a vector of polynomials (length nvars).
  std::vector<Polynomial> gradient() const;
  /// Lie derivative sum_i dP/dx_i * f[i] over the first f.size() variables.
  Polynomial lie_derivative(const std::vector<Polynomial>& f) const;
  /// Substitute variable i by repl[i] for every variable (repl.size()==nvars;
  /// all repl share one common variable space).
  Polynomial substitute(const std::vector<Polynomial>& repl) const;
  /// Extend/renumber into a larger variable space: variable i becomes
  /// variable map[i] in a space of `new_nvars` variables.
  Polynomial remap(std::size_t new_nvars, const std::vector<std::size_t>& map) const;
  /// Substitute variable `var` := value, eliminating it numerically (keeps
  /// the same variable space, exponent of `var` becomes 0).
  Polynomial fix_variable(std::size_t var, double value) const;

  /// L-infinity norm of the coefficient vector.
  double coeff_norm_inf() const;

  bool operator==(const Polynomial& other) const;

  std::string str(const std::vector<std::string>& names = {}) const;

 private:
  std::size_t nvars_ = 0;
  std::map<Monomial, double> terms_;
};

Polynomial operator+(Polynomial a, const Polynomial& b);
Polynomial operator-(Polynomial a, const Polynomial& b);
Polynomial operator*(double s, Polynomial a);
Polynomial operator+(Polynomial a, double c);
Polynomial operator-(Polynomial a, double c);

/// sum_i x_i^2 over the first `nstates` variables.
Polynomial squared_norm(std::size_t nvars, std::size_t nstates);

}  // namespace soslock::poly
